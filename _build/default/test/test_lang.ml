open Dvs_lang
open Dvs_ir

(* Compile a program, run it on the reference interpreter, return the
   value of a scalar variable. *)
let run_scalar ?(memory_extra = 0) src name =
  let cfg, layout = Lower.compile_string src in
  let mem = Array.make (layout.Lower.memory_words + memory_extra) 0 in
  let r = Interp.run cfg ~memory:mem in
  let reg = List.assoc name layout.Lower.scalars in
  r.Interp.registers.(reg)

let run_with_memory src init =
  let cfg, layout = Lower.compile_string src in
  let mem = Array.make layout.Lower.memory_words 0 in
  Array.blit init 0 mem 0 (Array.length init);
  let r = Interp.run cfg ~memory:mem in
  (r, layout)

let test_lexer_basic () =
  let toks = Lexer.tokenize "int x; x = 40 + 2; // comment\n" in
  let kinds = List.map (fun (t : Token.t) -> t.Token.kind) toks in
  Alcotest.(check bool) "token stream" true
    (kinds
    = [ Token.KW_INT; Token.IDENT "x"; Token.SEMI; Token.IDENT "x";
        Token.ASSIGN; Token.INT_LIT 40; Token.PLUS; Token.INT_LIT 2;
        Token.SEMI; Token.EOF ])

let test_lexer_comments_and_ops () =
  let toks = Lexer.tokenize "/* multi\nline */ a <= b << 2 && !c" in
  let kinds = List.map (fun (t : Token.t) -> t.Token.kind) toks in
  Alcotest.(check bool) "ops" true
    (kinds
    = [ Token.IDENT "a"; Token.LE; Token.IDENT "b"; Token.SHL;
        Token.INT_LIT 2; Token.ANDAND; Token.BANG; Token.IDENT "c";
        Token.EOF ])

let test_lexer_error () =
  match Lexer.tokenize "x = @;" with
  | exception Lexer.Error (_, pos) ->
    Alcotest.(check int) "line" 1 pos.Token.line
  | _ -> Alcotest.fail "expected a lexer error"

let test_parser_precedence () =
  (* 2 + 3 * 4 == 14 must parse as 2 + (3*4). *)
  Alcotest.(check int) "precedence" 1
    (run_scalar "int r; r = 2 + 3 * 4 == 14;" "r")

let test_parser_error_position () =
  match Parser.parse "int x; x = ;" with
  | exception Parser.Error (_, pos) ->
    Alcotest.(check int) "column" 12 pos.Token.col
  | _ -> Alcotest.fail "expected a parse error"

let test_typecheck_undeclared () =
  match Lower.compile_string "x = 1;" with
  | exception Typecheck.Error msg ->
    Alcotest.(check bool) "mentions x" true
      (String.length msg > 0 && String.index_opt msg 'x' <> None)
  | _ -> Alcotest.fail "expected a typecheck error"

let test_typecheck_shape_mismatch () =
  (match Lower.compile_string "int a[4]; a = 1;" with
  | exception Typecheck.Error _ -> ()
  | _ -> Alcotest.fail "array assigned as scalar should fail");
  match Lower.compile_string "int s; s[0] = 1;" with
  | exception Typecheck.Error _ -> ()
  | _ -> Alcotest.fail "scalar indexed should fail"

let test_typecheck_static_bounds () =
  match Lower.compile_string "int a[4]; a[4] = 1;" with
  | exception Typecheck.Error _ -> ()
  | _ -> Alcotest.fail "static out-of-bounds should fail"

let test_arith () =
  Alcotest.(check int) "arith" ((40 / 3) + (7 mod 4) - (2 * 5))
    (run_scalar "int r; r = 40 / 3 + 7 % 4 - 2 * 5;" "r")

let test_logical_and_comparisons () =
  Alcotest.(check int) "true" 1
    (run_scalar "int r; r = (3 < 4) && (4 >= 4) || 0;" "r");
  Alcotest.(check int) "not" 1 (run_scalar "int r; r = !(2 > 7);" "r");
  Alcotest.(check int) "neg" (-5) (run_scalar "int r; r = -5;" "r")

let test_if_else () =
  let src = "int r; int x; x = 7; if (x > 5) { r = 1; } else { r = 2; }" in
  Alcotest.(check int) "then" 1 (run_scalar src "r");
  let src = "int r; int x; x = 3; if (x > 5) { r = 1; } else { r = 2; }" in
  Alcotest.(check int) "else" 2 (run_scalar src "r")

let test_else_if_chain () =
  let src =
    "int r; int x; x = 2;\n\
     if (x == 1) { r = 10; } else if (x == 2) { r = 20; } else { r = 30; }"
  in
  Alcotest.(check int) "chain" 20 (run_scalar src "r")

let test_while_loop () =
  let src = "int s; int i; i = 0; s = 0; while (i < 10) { s = s + i; i = i + 1; }" in
  Alcotest.(check int) "sum 0..9" 45 (run_scalar src "s")

let test_for_loop () =
  let src = "int s; int i; s = 0; for (i = 1; i <= 5; i = i + 1) { s = s + i * i; }" in
  Alcotest.(check int) "sum of squares" 55 (run_scalar src "s")

let test_arrays () =
  let src =
    "int a[8]; int s; int i;\n\
     for (i = 0; i < 8; i = i + 1) { a[i] = i * 2; }\n\
     s = 0;\n\
     for (i = 0; i < 8; i = i + 1) { s = s + a[i]; }"
  in
  Alcotest.(check int) "array sum" 56 (run_scalar src "s")

let test_array_memory_state () =
  let src = "int a[4]; a[0] = 1; a[1] = a[0] + 1; a[2] = a[1] + 1; a[3] = a[2] + 1;" in
  let r, layout = run_with_memory src [||] in
  let base = Lower.array_base layout "a" in
  Alcotest.(check (list int)) "memory" [ 1; 2; 3; 4 ]
    (List.init 4 (fun i -> r.Interp.memory.(base + i)))

let test_nested_loops_matrix () =
  (* 4x4 matrix multiply of small known matrices: C = A * B where
     A = I scaled by 2, B[i][j] = i + j; C[i][j] = 2 * (i + j). *)
  let src =
    "int a[16]; int b[16]; int c[16]; int i; int j; int k; int acc;\n\
     for (i = 0; i < 4; i = i + 1) {\n\
     \  for (j = 0; j < 4; j = j + 1) {\n\
     \    a[i * 4 + j] = (i == j) * 2;\n\
     \    b[i * 4 + j] = i + j;\n\
     \  }\n\
     }\n\
     for (i = 0; i < 4; i = i + 1) {\n\
     \  for (j = 0; j < 4; j = j + 1) {\n\
     \    acc = 0;\n\
     \    for (k = 0; k < 4; k = k + 1) {\n\
     \      acc = acc + a[i * 4 + k] * b[k * 4 + j];\n\
     \    }\n\
     \    c[i * 4 + j] = acc;\n\
     \  }\n\
     }"
  in
  let r, layout = run_with_memory src [||] in
  let base = Lower.array_base layout "c" in
  let ok = ref true in
  for i = 0 to 3 do
    for j = 0 to 3 do
      if r.Interp.memory.(base + (i * 4) + j) <> 2 * (i + j) then ok := false
    done
  done;
  Alcotest.(check bool) "matmul" true !ok

let test_cfg_wellformed () =
  let src =
    "int x; int i; x = 0;\n\
     for (i = 0; i < 3; i = i + 1) { if (i % 2) { x = x + i; } }"
  in
  let cfg, _ = Lower.compile_string src in
  (match Cfg.validate cfg with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invalid CFG: %s" m);
  (* Every non-entry block is reachable through edges. *)
  Alcotest.(check bool) "has edges" true (Array.length (Cfg.edges cfg) > 0)

let test_edge_index_roundtrip () =
  let src = "int x; if (x) { x = 1; } else { x = 2; }" in
  let cfg, _ = Lower.compile_string src in
  Array.iteri
    (fun i e -> Alcotest.(check int) "roundtrip" i (Cfg.edge_index cfg e))
    (Cfg.edges cfg)

let test_builder_rejects_unterminated () =
  let b = Cfg.Builder.create () in
  let l = Cfg.Builder.add_block b in
  match Cfg.Builder.finish b ~entry:l with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure on missing terminator"

let test_interp_out_of_fuel () =
  let src = "int x; while (1) { x = x + 1; }" in
  let cfg, _ = Lower.compile_string src in
  match Interp.run ~fuel:1000 cfg ~memory:[||] with
  | exception Interp.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected out-of-fuel"

(* Random expression round-trip: generate an AST expression, evaluate it
   directly, and compare with the compiled result. *)
let expr_gen =
  QCheck.Gen.(
    let leaf = map (fun n -> Ast.Int n) (int_range (-50) 50) in
    let op =
      oneofl
        [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Rem; Ast.Lt; Ast.Le;
          Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne; Ast.Band; Ast.Bor; Ast.Bxor;
          Ast.Land; Ast.Lor ]
    in
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 1 then leaf
            else
              frequency
                [ (1, leaf);
                  (1, map (fun e -> Ast.Unop (Ast.Neg, e)) (self (n / 2)));
                  (1, map (fun e -> Ast.Unop (Ast.Not, e)) (self (n / 2)));
                  ( 4,
                    map3
                      (fun op a b -> Ast.Binop (op, a, b))
                      op (self (n / 2)) (self (n / 2)) ) ])
          (Int.min n 20)))

let rec eval_ast = function
  | Ast.Int n -> n
  | Ast.Var _ | Ast.Index _ | Ast.Call _ -> 0
  | Ast.Unop (Ast.Neg, e) -> -eval_ast e
  | Ast.Unop (Ast.Not, e) -> if eval_ast e = 0 then 1 else 0
  | Ast.Binop (op, a, b) ->
    let x = eval_ast a and y = eval_ast b in
    let b2i c = if c then 1 else 0 in
    (match op with
    | Ast.Add -> x + y
    | Ast.Sub -> x - y
    | Ast.Mul -> x * y
    | Ast.Div -> if y = 0 then 0 else x / y
    | Ast.Rem -> if y = 0 then 0 else x mod y
    | Ast.Lt -> b2i (x < y)
    | Ast.Le -> b2i (x <= y)
    | Ast.Gt -> b2i (x > y)
    | Ast.Ge -> b2i (x >= y)
    | Ast.Eq -> b2i (x = y)
    | Ast.Ne -> b2i (x <> y)
    | Ast.Land -> b2i (x <> 0 && y <> 0)
    | Ast.Lor -> b2i (x <> 0 || y <> 0)
    | Ast.Band -> x land y
    | Ast.Bor -> x lor y
    | Ast.Bxor -> x lxor y
    | Ast.Shl -> x lsl (y land 62)
    | Ast.Shr -> x asr (y land 62))

let qcheck_compiled_expr_matches_eval =
  QCheck.Test.make ~name:"compiled expressions match direct evaluation"
    ~count:300
    (QCheck.make expr_gen)
    (fun e ->
      let prog =
        { Ast.decls = [ { Ast.d_name = "r"; d_size = None } ];
          funcs = []; body = [ Ast.Assign ("r", None, e) ] }
      in
      let cfg, layout = Lower.compile prog in
      let r = Interp.run cfg ~memory:[||] in
      let reg = List.assoc "r" layout.Lower.scalars in
      r.Interp.registers.(reg) = eval_ast e)

(* Pretty-printer round-trip: print a random expression program, reparse,
   recompile, same result. *)
let qcheck_pp_roundtrip =
  QCheck.Test.make ~name:"pretty-print/reparse round-trip" ~count:200
    (QCheck.make expr_gen)
    (fun e ->
      let prog =
        { Ast.decls = [ { Ast.d_name = "r"; d_size = None } ];
          funcs = []; body = [ Ast.Assign ("r", None, e) ] }
      in
      let printed = Format.asprintf "%a" Ast.pp_program prog in
      let reparsed = Parser.parse printed in
      let cfg, layout = Lower.compile reparsed in
      let r = Interp.run cfg ~memory:[||] in
      let reg = List.assoc "r" layout.Lower.scalars in
      r.Interp.registers.(reg) = eval_ast e)

let suite =
  [ Alcotest.test_case "lexer basic" `Quick test_lexer_basic;
    Alcotest.test_case "lexer comments and ops" `Quick
      test_lexer_comments_and_ops;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser error position" `Quick
      test_parser_error_position;
    Alcotest.test_case "typecheck undeclared" `Quick test_typecheck_undeclared;
    Alcotest.test_case "typecheck shape mismatch" `Quick
      test_typecheck_shape_mismatch;
    Alcotest.test_case "typecheck static bounds" `Quick
      test_typecheck_static_bounds;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "logical and comparisons" `Quick
      test_logical_and_comparisons;
    Alcotest.test_case "if/else" `Quick test_if_else;
    Alcotest.test_case "else-if chain" `Quick test_else_if_chain;
    Alcotest.test_case "while loop" `Quick test_while_loop;
    Alcotest.test_case "for loop" `Quick test_for_loop;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "array memory state" `Quick test_array_memory_state;
    Alcotest.test_case "nested loops (matmul)" `Quick
      test_nested_loops_matrix;
    Alcotest.test_case "cfg well-formed" `Quick test_cfg_wellformed;
    Alcotest.test_case "edge index round-trip" `Quick
      test_edge_index_roundtrip;
    Alcotest.test_case "builder rejects unterminated" `Quick
      test_builder_rejects_unterminated;
    Alcotest.test_case "interp out of fuel" `Quick test_interp_out_of_fuel;
    QCheck_alcotest.to_alcotest qcheck_compiled_expr_matches_eval;
    QCheck_alcotest.to_alcotest qcheck_pp_roundtrip ]
