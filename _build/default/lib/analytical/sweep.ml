type surface = {
  x_label : string;
  y_label : string;
  xs : float array;
  ys : float array;
  z : float array array;
}

let surface ~x_label ~y_label ~xs ~ys f =
  let z =
    Array.map
      (fun y ->
        Array.map
          (fun x -> match f x y with Some v -> v | None -> Float.nan)
          xs)
      ys
  in
  { x_label; y_label; xs; ys; z }

let max_point s =
  let best = ref None in
  Array.iteri
    (fun iy row ->
      Array.iteri
        (fun ix v ->
          if Float.is_finite v then
            match !best with
            | Some (_, _, v') when v' >= v -> ()
            | _ -> best := Some (s.xs.(ix), s.ys.(iy), v))
        row)
    s.z;
  !best

let continuous_savings ?law ~base ~x_label ~y_label ~xs ~ys set =
  surface ~x_label ~y_label ~xs ~ys (fun x y ->
      Savings.continuous ?law (set base x y))

let discrete_savings ~table ~base ~x_label ~y_label ~xs ~ys set =
  surface ~x_label ~y_label ~xs ~ys (fun x y ->
      Savings.discrete (set base x y) table)
