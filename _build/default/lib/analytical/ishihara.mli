(** The Ishihara-Yasuura (ISLPED'98) voltage-scheduling model the paper
    builds on — and argues is insufficient for programs with memory.

    It models a fixed number of {e cycles} to execute before a deadline,
    with no asynchronous memory component: under continuous scaling a
    single voltage is optimal, and under a discrete table the two
    neighbors of the ideal frequency are.  Included here so the bound
    comparison experiment can show exactly what ignoring [t_invariant]
    costs (the paper's Section 3 motivation). *)

val single_voltage :
  ?law:Dvs_power.Alpha_power.t -> cycles:float -> float -> float
(** [single_voltage ~cycles deadline]: optimal (single) supply voltage
    for [cycles] within [deadline] seconds. *)

val continuous_energy :
  ?law:Dvs_power.Alpha_power.t -> cycles:float -> float -> float
(** [continuous_energy ~cycles deadline]: minimum energy in
    [volt^2 * cycles] under continuous scaling. *)

val discrete_energy :
  Dvs_power.Mode.table -> cycles:float -> deadline:float -> float option
(** Minimum energy with a mode table (two-neighbor split); [None] if the
    fastest mode cannot make the deadline. *)

val of_params : Params.t -> float
(** Total cycle count an IY-style model would see for a program with
    parameters [p]: every cycle, including the hit cycles — the memory
    wait time is (incorrectly) not modeled at all. *)
