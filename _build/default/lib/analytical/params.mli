(** Program parameters of the Section 3 analytical model.

    A region of code is characterized by four quantities measured by
    profiling (the paper's Table 7) plus a deadline:

    - [n_overlap]: cycles of computation that can run in parallel with
      outstanding memory operations;
    - [n_dependent]: cycles of computation that must wait for memory
      operations to complete;
    - [n_cache]: cycles of memory operations that hit in the cache (these
      consume processor clock cycles);
    - [t_invariant]: wall-clock time of cache-miss service.  Memory is
      asynchronous, so this time does not scale with the processor clock;
    - [t_deadline]: the execution-time budget.

    Cycle counts are floats (they are large and enter continuous
    optimization).  Times are in seconds. *)

type t = {
  n_overlap : float;
  n_dependent : float;
  n_cache : float;
  t_invariant : float;
  t_deadline : float;
}

val make :
  n_overlap:float -> n_dependent:float -> n_cache:float ->
  t_invariant:float -> t_deadline:float -> t
(** Raises [Invalid_argument] on negative cycle counts or times, or a
    non-positive deadline. *)

val with_deadline : t -> float -> t

type case =
  | Computation_dominated
      (** A single frequency is optimal; memory time is hidden. *)
  | Memory_dominated
      (** Two frequencies are optimal (slow during the overlap region, fast
          for the dependent computation). *)
  | Memory_dominated_with_slack
      (** [n_cache >= n_overlap]: slowing the overlap region dilates the
          memory time itself, so a single frequency is again optimal. *)

val classify : t -> case
(** The paper's case analysis.  [Memory_dominated] iff
    [n_cache < n_overlap] and [f_invariant < f_ideal]. *)

val f_ideal : t -> float
(** [(n_overlap + n_dependent) / t_deadline]: the single frequency that
    just meets the deadline when memory is fully hidden. *)

val f_invariant : t -> float
(** [(n_overlap - n_cache) / t_invariant]: the frequency at which the
    excess overlap computation exactly fills the cache-miss window.
    [infinity] when [t_invariant = 0]. *)

val charged_overlap_cycles : t -> float
(** Processor-active cycles charged for the overlap region:
    [max n_overlap n_cache] (the non-dominant activity runs concurrently;
    idle cycles are clock-gated and free). *)

val total_time : t -> float -> float
(** [total_time p f] is the execution time when the whole region runs at
    clock frequency [f]:
    [max (t_invariant + n_cache/f) (n_overlap/f) + n_dependent/f].
    Requires [f > 0] unless all cycle counts are zero. *)

val pp : Format.formatter -> t -> unit

val pp_case : Format.formatter -> case -> unit
