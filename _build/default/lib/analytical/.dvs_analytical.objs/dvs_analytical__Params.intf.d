lib/analytical/params.mli: Format
