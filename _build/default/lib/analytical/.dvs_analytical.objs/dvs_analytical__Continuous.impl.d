lib/analytical/continuous.ml: Alpha_power Array Dvs_numeric Dvs_power Float List Option Params
