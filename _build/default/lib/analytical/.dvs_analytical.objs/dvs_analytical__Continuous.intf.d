lib/analytical/continuous.mli: Dvs_power Params
