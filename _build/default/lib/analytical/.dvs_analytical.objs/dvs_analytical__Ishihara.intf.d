lib/analytical/ishihara.mli: Dvs_power Params
