lib/analytical/sweep.ml: Array Float Savings
