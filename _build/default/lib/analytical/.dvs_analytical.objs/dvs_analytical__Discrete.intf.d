lib/analytical/discrete.mli: Dvs_power Params
