lib/analytical/ishihara.ml: Alpha_power Discrete Dvs_power Params
