lib/analytical/discrete.ml: Dvs_numeric Dvs_power Float List Mode Option Params
