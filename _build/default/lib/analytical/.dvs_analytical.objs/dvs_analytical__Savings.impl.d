lib/analytical/savings.ml: Continuous Discrete Float Params
