lib/analytical/savings.mli: Dvs_power Params
