lib/analytical/params.ml: Float Format Printf
