lib/analytical/sweep.mli: Dvs_power Params
