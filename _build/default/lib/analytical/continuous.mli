(** Section 3.3: minimum-energy DVS schedules with a {e continuously}
    scalable supply voltage.

    Energy is measured in units of [volt^2 * cycles] (the effective
    switched capacitance is a common constant that cancels in every ratio
    the paper reports).

    The optimizer splits the deadline into an overlap-phase budget [t1] and
    a dependent-phase budget [t_deadline - t1] and minimizes the sum of the
    two phases' energies over the split point.  This subsumes the paper's
    three cases: the computation-dominated and slack cases come out with
    [f1 = f2], the memory-dominated case with [f1 < f2]. *)

type schedule = {
  energy : float;  (** volt^2 * cycles *)
  t1 : float;  (** overlap-phase wall time, seconds *)
  f1 : float;  (** overlap-phase frequency, hertz *)
  v1 : float;
  f2 : float;  (** dependent-phase frequency (0 when [n_dependent = 0]) *)
  v2 : float;
}

val single_frequency :
  ?law:Dvs_power.Alpha_power.t -> Params.t -> schedule option
(** The best {e single} frequency that just meets the deadline — the
    baseline every savings number is measured against.  [None] when the
    deadline is unreachable at any frequency (i.e. [t_deadline <
    t_invariant] with work remaining). *)

val optimize :
  ?law:Dvs_power.Alpha_power.t -> ?n:int -> Params.t -> schedule option
(** Minimum-energy schedule using (up to) two voltages.  [n] is the grid
    resolution of the phase-split search (default 800).  Guaranteed no
    worse than {!single_frequency}. *)

val energy_at_v1 :
  ?law:Dvs_power.Alpha_power.t -> Params.t -> float -> float option
(** [energy_at_v1 p v1] fixes the overlap-phase voltage and derives the
    dependent-phase voltage that exactly meets the deadline — the quantity
    plotted in the paper's Figures 2-4.  [None] if [v1] leaves no time for
    the dependent computation. *)

val curve :
  ?law:Dvs_power.Alpha_power.t -> ?n:int -> Params.t -> v_lo:float ->
  v_hi:float -> (float * float) list
(** Sampled [energy_at_v1] graph over a [v1] range (infeasible points are
    omitted). *)
