(** Energy-saving ratios: how much better the optimal multi-voltage
    schedule is than the best single frequency that meets the deadline.

    Ratio = [1 - E_optimal / E_single].  Zero means intra-program DVS buys
    nothing (a single setting is already optimal); the paper's headline
    surfaces (Figures 5-7 and 9-11) and Tables 1/6 are all in this unit. *)

val continuous :
  ?law:Dvs_power.Alpha_power.t -> Params.t -> float option
(** [None] when the deadline is infeasible.  Clamped at 0 from below. *)

val discrete : Params.t -> Dvs_power.Mode.table -> float option
(** Savings with a finite mode table.  [None] when even the fastest mode
    misses the deadline. *)
