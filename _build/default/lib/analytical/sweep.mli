(** Two-parameter sweeps of the savings ratio — the raw data behind the
    paper's surface plots (Figures 5-7 continuous, 9-11 discrete). *)

type surface = {
  x_label : string;
  y_label : string;
  xs : float array;
  ys : float array;
  z : float array array;  (** [z.(iy).(ix)], NaN where infeasible *)
}

val surface :
  x_label:string -> y_label:string -> xs:float array -> ys:float array ->
  (float -> float -> float option) -> surface
(** [surface ~xs ~ys f] evaluates [f x y] on the grid; [None] becomes
    NaN. *)

val max_point : surface -> (float * float * float) option
(** [(x, y, z)] of the maximum finite cell, if any. *)

val continuous_savings :
  ?law:Dvs_power.Alpha_power.t -> base:Params.t -> x_label:string ->
  y_label:string -> xs:float array -> ys:float array ->
  (Params.t -> float -> float -> Params.t) -> surface
(** Savings surface for the continuous model: the final argument maps
    [base x y] to the parameter point of each cell. *)

val discrete_savings :
  table:Dvs_power.Mode.table -> base:Params.t -> x_label:string ->
  y_label:string -> xs:float array -> ys:float array ->
  (Params.t -> float -> float -> Params.t) -> surface
