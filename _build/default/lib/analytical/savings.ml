let ratio ~base ~opt =
  if base <= 0.0 then 0.0 else Float.max 0.0 (1.0 -. (opt /. base))

let continuous ?law (p : Params.t) =
  match Continuous.single_frequency ?law p with
  | None -> None
  | Some base -> (
    match Continuous.optimize ?law p with
    | None -> Some 0.0
    | Some opt ->
      Some (ratio ~base:base.Continuous.energy ~opt:opt.Continuous.energy))

let discrete (p : Params.t) tbl =
  match Discrete.single_mode p tbl with
  | None -> None
  | Some (_, base) -> (
    match Discrete.optimize p tbl with
    | None -> Some 0.0
    | Some opt -> Some (ratio ~base ~opt:opt.Discrete.energy))
