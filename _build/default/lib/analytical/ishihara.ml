open Dvs_power

let single_voltage ?(law = Alpha_power.default) ~cycles deadline =
  if cycles <= 0.0 then 0.0
  else Alpha_power.voltage law (cycles /. deadline)

let continuous_energy ?(law = Alpha_power.default) ~cycles deadline =
  if cycles <= 0.0 then 0.0
  else begin
    let v = single_voltage ~law ~cycles deadline in
    cycles *. v *. v
  end

let discrete_energy table ~cycles ~deadline =
  match Discrete.split table ~cycles ~time:deadline with
  | Some (e, _) -> Some e
  | None -> None

let of_params (p : Params.t) =
  p.n_overlap +. p.n_dependent +. p.n_cache
