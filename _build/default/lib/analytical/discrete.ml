open Dvs_power

type assignment = { mode : Mode.t; cycles : float }

type schedule = {
  energy : float;
  t1 : float;
  phase1 : assignment list;
  phase2 : assignment list;
}

let tol = 1e-9

let energy_of_assignments assigns =
  List.fold_left
    (fun acc { mode; cycles } ->
      acc +. (cycles *. mode.Mode.voltage *. mode.Mode.voltage))
    0.0 assigns

(* Split [cycles] across the two neighbor modes of [cycles/time]:
   xa/fa + xb/fb = time, xa + xb = cycles. *)
let split tbl ~cycles ~time =
  if cycles = 0.0 then Some (0.0, [])
  else if time <= 0.0 then None
  else begin
    let f_req = cycles /. time in
    let fmax = (Mode.max_mode tbl).frequency in
    if f_req > fmax *. (1.0 +. tol) then None
    else begin
      let a, b = Mode.neighbors tbl f_req in
      let assigns =
        if a.frequency = b.frequency then [ { mode = a; cycles } ]
        else begin
          let fa = a.frequency and fb = b.frequency in
          let xa = fa *. ((fb *. time) -. cycles) /. (fb -. fa) in
          let xa = Float.max 0.0 (Float.min cycles xa) in
          let xb = cycles -. xa in
          [ { mode = a; cycles = xa }; { mode = b; cycles = xb } ]
        end
      in
      Some (energy_of_assignments assigns, assigns)
    end
  end

let single_mode (p : Params.t) tbl =
  let charged = Params.charged_overlap_cycles p +. p.n_dependent in
  let feasible (m : Mode.t) =
    Params.total_time p m.frequency <= p.t_deadline *. (1.0 +. tol)
  in
  let best =
    List.fold_left
      (fun acc m ->
        if not (feasible m) then acc
        else begin
          let e = charged *. m.Mode.voltage *. m.Mode.voltage in
          match acc with
          | Some (_, e') when e' <= e -> acc
          | _ -> Some (m, e)
        end)
      None (Mode.to_list tbl)
  in
  best

(* Excess overlap cycles packed into the miss window [t_invariant], low
   mode first (the paper's rule): as many as possible at [a], the rest at
   [b]. *)
let pack_extra ~t_invariant (a : Mode.t) (b : Mode.t) extra =
  if extra <= 0.0 then Some (0.0, [])
  else if extra <= t_invariant *. a.frequency *. (1.0 +. tol) then
    Some (extra *. a.voltage *. a.voltage, [ { mode = a; cycles = extra } ])
  else if b.frequency > a.frequency
          && extra <= t_invariant *. b.frequency *. (1.0 +. tol)
  then begin
    let fa = a.frequency and fb = b.frequency in
    let za = fa *. ((fb *. t_invariant) -. extra) /. (fb -. fa) in
    let za = Float.max 0.0 (Float.min extra za) in
    let zb = extra -. za in
    let assigns = [ { mode = a; cycles = za }; { mode = b; cycles = zb } ] in
    Some (energy_of_assignments assigns, assigns)
  end
  else None

(* Overlap phase within wall time [t1].  Same two regimes as the
   continuous case; the memory-side-bound regime is the paper's
   four-frequency construction (cache split + extra packing). *)
let phase1 (p : Params.t) tbl t1 =
  let charged = Params.charged_overlap_cycles p in
  if charged = 0.0 then
    if t1 >= p.t_invariant *. (1.0 -. tol) then Some (0.0, []) else None
  else begin
    let mem_bound =
      if p.n_cache > 0.0 && t1 > p.t_invariant then begin
        let y = t1 -. p.t_invariant in
        match split tbl ~cycles:p.n_cache ~time:y with
        | None -> None
        | Some (e_cache, cache_assigns) -> (
          let a, b = Mode.neighbors tbl (p.n_cache /. y) in
          let extra = Float.max 0.0 (p.n_overlap -. p.n_cache) in
          match pack_extra ~t_invariant:p.t_invariant a b extra with
          | None -> None
          | Some (e_extra, extra_assigns) ->
            Some (e_cache +. e_extra, cache_assigns @ extra_assigns))
      end
      else None
    in
    let compute_bound =
      if p.n_overlap > 0.0 && p.n_overlap >= p.n_cache && t1 > 0.0
         && p.t_invariant <= t1 *. (1.0 -. (p.n_cache /. p.n_overlap)) +. tol
      then split tbl ~cycles:p.n_overlap ~time:t1
      else None
    in
    match (mem_bound, compute_bound) with
    | None, None -> None
    | Some r, None | None, Some r -> Some r
    | Some (e1, a1), Some (e2, a2) ->
      Some (if e1 <= e2 then (e1, a1) else (e2, a2))
  end

let emin_of_y (p : Params.t) tbl y =
  if y <= 0.0 then infinity
  else begin
    let t1 = p.t_invariant +. y in
    match phase1 p tbl t1 with
    | None -> infinity
    | Some (e1, _) -> (
      match split tbl ~cycles:p.n_dependent ~time:(p.t_deadline -. t1) with
      | None -> infinity
      | Some (e2, _) -> e1 +. e2)
  end

let optimize ?(n = 1600) (p : Params.t) tbl =
  let base = single_mode p tbl in
  let schedule_of_single ((m : Mode.t), e) =
    let t1 =
      if Params.charged_overlap_cycles p = 0.0 then p.t_invariant
      else
        Float.max
          (p.t_invariant +. (p.n_cache /. m.frequency))
          (p.n_overlap /. m.frequency)
    in
    { energy = e; t1;
      phase1 =
        (let c = Params.charged_overlap_cycles p in
         if c > 0.0 then [ { mode = m; cycles = c } ] else []);
      phase2 =
        (if p.n_dependent > 0.0 then
           [ { mode = m; cycles = p.n_dependent } ]
         else []) }
  in
  if p.t_deadline <= p.t_invariant then Option.map schedule_of_single base
  else begin
    let cost t1 =
      match phase1 p tbl t1 with
      | None -> infinity
      | Some (e1, _) -> (
        match split tbl ~cycles:p.n_dependent ~time:(p.t_deadline -. t1) with
        | None -> infinity
        | Some (e2, _) -> e1 +. e2)
    in
    let span = p.t_deadline -. p.t_invariant in
    let lo = p.t_invariant +. (span *. 1e-6) in
    let hi =
      if p.n_dependent > 0.0 then p.t_deadline -. (span *. 1e-6)
      else p.t_deadline
    in
    let t1, e = Dvs_numeric.Optimize.grid_minimize ~n ~lo ~hi cost in
    let multi =
      if Float.is_finite e then begin
        match (phase1 p tbl t1, split tbl ~cycles:p.n_dependent
                                  ~time:(p.t_deadline -. t1))
        with
        | Some (e1, a1), Some (e2, a2) ->
          Some { energy = e1 +. e2; t1; phase1 = a1; phase2 = a2 }
        | _ -> None
      end
      else None
    in
    match (multi, base) with
    | None, None -> None
    | Some s, None -> Some s
    | None, Some b -> Some (schedule_of_single b)
    | Some s, Some ((_, eb) as b) ->
      if eb < s.energy then Some (schedule_of_single b) else Some s
  end
