type t = {
  n_overlap : float;
  n_dependent : float;
  n_cache : float;
  t_invariant : float;
  t_deadline : float;
}

let make ~n_overlap ~n_dependent ~n_cache ~t_invariant ~t_deadline =
  let nonneg name v =
    if not (v >= 0.0) then
      invalid_arg (Printf.sprintf "Params.make: %s must be >= 0" name)
  in
  nonneg "n_overlap" n_overlap;
  nonneg "n_dependent" n_dependent;
  nonneg "n_cache" n_cache;
  nonneg "t_invariant" t_invariant;
  if not (t_deadline > 0.0) then
    invalid_arg "Params.make: t_deadline must be positive";
  { n_overlap; n_dependent; n_cache; t_invariant; t_deadline }

let with_deadline p t_deadline = { p with t_deadline }

type case =
  | Computation_dominated
  | Memory_dominated
  | Memory_dominated_with_slack

let f_ideal p = (p.n_overlap +. p.n_dependent) /. p.t_deadline

let f_invariant p =
  if p.t_invariant = 0.0 then infinity
  else (p.n_overlap -. p.n_cache) /. p.t_invariant

let classify p =
  if p.n_cache >= p.n_overlap then Memory_dominated_with_slack
  else if f_invariant p >= f_ideal p then Computation_dominated
  else Memory_dominated

let charged_overlap_cycles p = Float.max p.n_overlap p.n_cache

let total_time p f =
  let cycles = p.n_overlap +. p.n_dependent +. p.n_cache in
  if cycles = 0.0 then p.t_invariant
  else begin
    if not (f > 0.0) then invalid_arg "Params.total_time: frequency must be > 0";
    Float.max (p.t_invariant +. (p.n_cache /. f)) (p.n_overlap /. f)
    +. (p.n_dependent /. f)
  end

let pp ppf p =
  Format.fprintf ppf
    "{Nov=%.4g cyc; Ndep=%.4g cyc; Ncache=%.4g cyc; tinv=%.4gus; tdl=%.4gus}"
    p.n_overlap p.n_dependent p.n_cache
    (p.t_invariant *. 1e6)
    (p.t_deadline *. 1e6)

let pp_case ppf = function
  | Computation_dominated -> Format.pp_print_string ppf "computation-dominated"
  | Memory_dominated -> Format.pp_print_string ppf "memory-dominated"
  | Memory_dominated_with_slack ->
    Format.pp_print_string ppf "memory-dominated-with-slack"
