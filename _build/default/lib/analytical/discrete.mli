(** Section 3.4: minimum-energy DVS schedules when the supply voltage is
    restricted to a finite mode table.

    Key results implemented here:
    - executing [N] cycles within time [T] is cheapest using the two table
      modes whose frequencies bracket [N/T] (Ishihara-Yasuura), implemented
      by {!split};
    - the computation-dominated and slack cases therefore need two modes;
    - the memory-dominated case needs four modes, found by a 1-D search
      over [y], the time allotted to the cache-hit cycles ({!emin_of_y},
      the paper's Figure 8 curve).

    Energy unit: [volt^2 * cycles]. *)

type assignment = { mode : Dvs_power.Mode.t; cycles : float }

type schedule = {
  energy : float;
  t1 : float;  (** overlap-phase wall time *)
  phase1 : assignment list;  (** overlap-phase charged cycles per mode *)
  phase2 : assignment list;  (** dependent-phase cycles per mode *)
}

val split :
  Dvs_power.Mode.table -> cycles:float -> time:float ->
  (float * assignment list) option
(** [split tbl ~cycles ~time] is the minimum energy (and the mode
    assignment) to execute [cycles] within [time], or [None] when even the
    fastest mode is too slow.  When [cycles/time] is below the slowest
    mode, everything runs there (the clock is gated once done). *)

val single_mode :
  Params.t -> Dvs_power.Mode.table -> (Dvs_power.Mode.t * float) option
(** Best single mode meeting the deadline and its energy — the baseline of
    the paper's discrete-case savings plots. *)

val emin_of_y : Params.t -> Dvs_power.Mode.table -> float -> float
(** [emin_of_y p tbl y] is the memory-dominated-case energy when the
    cache-hit cycles are given exactly [y] seconds (Figure 8):
    two neighbor modes of [n_cache/y] serve the overlap phase (excess
    overlap cycles pack into the miss window, low mode first), two
    neighbor modes of [n_dependent/(t_deadline - t_invariant - y)] serve
    the dependent phase.  [infinity] when infeasible. *)

val optimize : ?n:int -> Params.t -> Dvs_power.Mode.table -> schedule option
(** Minimum-energy discrete schedule: a grid search over the phase split
    combining the regime costs, never worse than {!single_mode}.
    [n] is the grid resolution (default 1600). *)
