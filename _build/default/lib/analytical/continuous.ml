open Dvs_power

type schedule = {
  energy : float;
  t1 : float;
  f1 : float;
  v1 : float;
  f2 : float;
  v2 : float;
}

let has_work (p : Params.t) =
  p.n_overlap +. p.n_dependent +. p.n_cache > 0.0

(* Relative tolerance used when checking deadline/phase feasibility; keeps
   the boundary cases (exact fit) inside the feasible set. *)
let tol = 1e-9

let single_frequency ?(law = Alpha_power.default) (p : Params.t) =
  if not (has_work p) then
    if p.t_invariant <= p.t_deadline *. (1.0 +. tol) then
      Some { energy = 0.0; t1 = p.t_invariant; f1 = 0.0; v1 = 0.0;
             f2 = 0.0; v2 = 0.0 }
    else None
  else if p.t_deadline <= p.t_invariant then
    (* Even an infinitely fast clock cannot beat the miss time. *)
    None
  else begin
    (* total_time is strictly decreasing in f; find the smallest feasible
       frequency by bracketing and inversion. *)
    let time f = Params.total_time p f in
    let lo = ref 1.0 in
    while time !lo < p.t_deadline do
      lo := !lo /. 2.0
    done;
    let hi = ref (Float.max (2.0 *. !lo) 1.0) in
    while time !hi > p.t_deadline do
      hi := !hi *. 2.0
    done;
    let f =
      Dvs_numeric.Optimize.invert_increasing ~lo:!lo ~hi:!hi
        (fun f -> -.time f)
        (-.p.t_deadline)
    in
    let v = Alpha_power.voltage law f in
    let charged = Params.charged_overlap_cycles p +. p.n_dependent in
    let t1 =
      Float.max (p.t_invariant +. (p.n_cache /. f)) (p.n_overlap /. f)
    in
    Some { energy = charged *. v *. v; t1; f1 = f; v1 = v; f2 = f; v2 = v }
  end

(* Minimum energy for the overlap phase completed within wall time [t1].
   Two regimes:

   - memory-side-bound: the phase ends when the hits finish after the miss
     window, [t1 = t_invariant + n_cache/f1] with the hit cycles at [f1].
     The excess overlap computation [n_overlap - n_cache] executes during
     the miss window at its own optimal frequency
     [(n_overlap - n_cache) / t_invariant] — the same freedom the paper's
     discrete four-frequency construction exploits (its `extra at fa/fb'
     packing), kept here so the continuous model remains a valid lower
     bound of the discrete one.
   - compute-side-bound: [t1 = n_overlap/f1] with everything at [f1];
     feasible when the memory side fits,
     [t_invariant + n_cache/f1 <= t1].

   Energy charges the dominant activity, [max n_overlap n_cache] cycles;
   clock-gated idle cycles are free. *)
let phase1_energy law (p : Params.t) t1 =
  let charged = Params.charged_overlap_cycles p in
  if charged = 0.0 then
    if t1 >= p.t_invariant *. (1.0 -. tol) then Some (0.0, 0.0) else None
  else begin
    let sq v = v *. v in
    let mem_bound =
      if p.n_cache > 0.0 && t1 > p.t_invariant then begin
        let f1 = p.n_cache /. (t1 -. p.t_invariant) in
        let extra = Float.max 0.0 (p.n_overlap -. p.n_cache) in
        if extra = 0.0 then
          Some (p.n_cache *. sq (Alpha_power.voltage law f1), f1)
        else if p.t_invariant > 0.0 then begin
          let f_extra = extra /. p.t_invariant in
          let e =
            (p.n_cache *. sq (Alpha_power.voltage law f1))
            +. (extra *. sq (Alpha_power.voltage law f_extra))
          in
          (* Report the computation frequency (the paper's f1); the hit
             cycles' clock is implied by the phase length. *)
          Some (e, f_extra)
        end
        else None
      end
      else None
    in
    let compute_bound =
      if p.n_overlap > 0.0 && t1 > 0.0 then begin
        let f1 = p.n_overlap /. t1 in
        if p.t_invariant +. (p.n_cache /. f1) <= t1 *. (1.0 +. tol) then
          Some (charged *. sq (Alpha_power.voltage law f1), f1)
        else None
      end
      else None
    in
    match (mem_bound, compute_bound) with
    | None, None -> None
    | Some r, None | None, Some r -> Some r
    | Some (e1, f1), Some (e2, f2) ->
      Some (if e1 <= e2 then (e1, f1) else (e2, f2))
  end

let phase2_energy law (p : Params.t) t2 =
  if p.n_dependent = 0.0 then Some (0.0, 0.0)
  else if t2 <= 0.0 then None
  else begin
    let f2 = p.n_dependent /. t2 in
    let v = Alpha_power.voltage law f2 in
    Some (p.n_dependent *. v *. v, f2)
  end

let optimize ?(law = Alpha_power.default) ?(n = 800) (p : Params.t) =
  if not (has_work p) then single_frequency ~law p
  else if p.t_deadline <= p.t_invariant then None
  else begin
    let cost t1 =
      match phase1_energy law p t1 with
      | None -> infinity
      | Some (e1, _) -> (
        match phase2_energy law p (p.t_deadline -. t1) with
        | None -> infinity
        | Some (e2, _) -> e1 +. e2)
    in
    let span = p.t_deadline -. p.t_invariant in
    let lo = p.t_invariant +. (span *. 1e-6) in
    let hi =
      if p.n_dependent > 0.0 then p.t_deadline -. (span *. 1e-6)
      else p.t_deadline
    in
    let t1, e = Dvs_numeric.Optimize.grid_minimize ~n ~lo ~hi cost in
    if not (Float.is_finite e) then None
    else begin
      let _, f1 = Option.get (phase1_energy law p t1) in
      let _, f2 = Option.get (phase2_energy law p (p.t_deadline -. t1)) in
      let two_voltage =
        { energy = e; t1;
          f1; v1 = (if f1 > 0.0 then Alpha_power.voltage law f1 else 0.0);
          f2; v2 = (if f2 > 0.0 then Alpha_power.voltage law f2 else 0.0) }
      in
      (* The split search brackets the single-frequency point only up to
         grid resolution; never report worse than the baseline. *)
      match single_frequency ~law p with
      | Some s when s.energy < two_voltage.energy -> Some s
      | _ -> Some two_voltage
    end
  end

let energy_at_v1 ?(law = Alpha_power.default) (p : Params.t) v1 =
  let f1 = Alpha_power.frequency law v1 in
  if f1 <= 0.0 then None
  else begin
    let t1 =
      Float.max (p.t_invariant +. (p.n_cache /. f1)) (p.n_overlap /. f1)
    in
    let charged = Params.charged_overlap_cycles p in
    let e1 = charged *. v1 *. v1 in
    match phase2_energy law p (p.t_deadline -. t1) with
    | None -> None
    | Some (e2, _) -> Some (e1 +. e2)
  end

let curve ?(law = Alpha_power.default) ?(n = 100) (p : Params.t) ~v_lo ~v_hi =
  let vs = Dvs_numeric.Vec.linspace v_lo v_hi n in
  Array.to_list vs
  |> List.filter_map (fun v ->
         match energy_at_v1 ~law p v with
         | Some e -> Some (v, e)
         | None -> None)
