(** Rendering of sweep surfaces and 1-D series as text: the stand-in for
    the paper's 3-D plots.  Each surface prints as a numeric grid (values
    in percent for savings surfaces) plus a coarse character shade so the
    peaks are visible at a glance. *)

val surface :
  ?scale:float -> ?digits:int -> Dvs_analytical.Sweep.surface -> string
(** [scale] multiplies values before printing (default 100: fractions as
    percent). *)

val series :
  x_label:string -> y_label:string -> ?digits:int ->
  (float * float) list -> string
(** Two-column listing plus an inline bar chart. *)
