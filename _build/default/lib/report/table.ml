type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : (string * align) list;
  mutable rows : row list;  (* reversed *)
}

let create headers =
  if headers = [] then invalid_arg "Table.create: no columns";
  { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let headers = List.map fst t.headers in
  let aligns = List.map snd t.headers in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row ->
            match row with
            | Cells cells -> Int.max w (String.length (List.nth cells i))
            | Rule -> w)
          (String.length h) rows)
      headers
  in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let buf = Buffer.create 256 in
  let emit_cells cells =
    let parts =
      List.map2
        (fun (w, a) c -> pad a w c)
        (List.combine widths aligns)
        cells
    in
    Buffer.add_string buf (String.concat "  " parts);
    Buffer.add_char buf '\n'
  in
  let rule () =
    Buffer.add_string buf
      (String.concat "  " (List.map (fun w -> String.make w '-') widths));
    Buffer.add_char buf '\n'
  in
  emit_cells headers;
  rule ();
  List.iter
    (fun row -> match row with Cells c -> emit_cells c | Rule -> rule ())
    rows;
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float ?(digits = 2) v =
  if Float.is_nan v then "-" else Printf.sprintf "%.*f" digits v
