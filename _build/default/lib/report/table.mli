(** Plain-text tables for the experiment reports. *)

type align = Left | Right

type t

val create : (string * align) list -> t
(** Column headers with alignment. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] on arity mismatch. *)

val add_rule : t -> unit
(** Horizontal separator. *)

val render : t -> string

val print : t -> unit
(** [render] to stdout with a trailing newline. *)

val fmt_float : ?digits:int -> float -> string
(** Fixed-point with NaN shown as "-". *)
