let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let surface ?(scale = 100.0) ?(digits = 1) (s : Dvs_analytical.Sweep.surface) =
  let buf = Buffer.create 1024 in
  let vmax =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc v -> if Float.is_finite v then Float.max acc v else acc)
          acc row)
      0.0 s.z
  in
  Buffer.add_string buf
    (Printf.sprintf "rows: %s (top to bottom), cols: %s (left to right)\n"
       s.y_label s.x_label);
  Buffer.add_string buf
    (Printf.sprintf "cols %s: %s\n" s.x_label
       (String.concat " "
          (Array.to_list (Array.map (fun x -> Printf.sprintf "%.3g" x) s.xs))));
  (* Numeric grid, one row per y (descending, like a plot). *)
  for iy = Array.length s.ys - 1 downto 0 do
    Buffer.add_string buf (Printf.sprintf "%10.3g | " s.ys.(iy));
    Array.iter
      (fun v ->
        if Float.is_finite v then
          Buffer.add_string buf (Printf.sprintf "%*.*f " (digits + 4) digits (scale *. v))
        else Buffer.add_string buf (String.make (digits + 4) '-' ^ " "))
      s.z.(iy);
    (* Shade strip. *)
    Buffer.add_string buf "  ";
    Array.iter
      (fun v ->
        let c =
          if not (Float.is_finite v) then '?'
          else if vmax <= 0.0 then ' '
          else
            shades.(Int.min 9 (int_of_float (9.99 *. (v /. vmax))))
        in
        Buffer.add_char buf c)
      s.z.(iy);
    Buffer.add_char buf '\n'
  done;
  (match Dvs_analytical.Sweep.max_point s with
  | Some (x, y, v) ->
    Buffer.add_string buf
      (Printf.sprintf "peak: %.4g at %s=%.4g, %s=%.4g\n" (scale *. v)
         s.x_label x s.y_label y)
  | None -> Buffer.add_string buf "peak: none (all infeasible)\n");
  Buffer.contents buf

let series ~x_label ~y_label ?(digits = 4) pts =
  let buf = Buffer.create 512 in
  let vmax = List.fold_left (fun a (_, y) -> Float.max a y) 0.0 pts in
  Buffer.add_string buf (Printf.sprintf "%14s  %14s\n" x_label y_label);
  List.iter
    (fun (x, y) ->
      let bar =
        if vmax <= 0.0 then ""
        else String.make (int_of_float (40.0 *. y /. vmax)) '#'
      in
      Buffer.add_string buf
        (Printf.sprintf "%14.*g  %14.*g  %s\n" digits x digits y bar))
    pts;
  Buffer.contents buf
