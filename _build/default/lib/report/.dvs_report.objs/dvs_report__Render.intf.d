lib/report/render.mli: Dvs_analytical
