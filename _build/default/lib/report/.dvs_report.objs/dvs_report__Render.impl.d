lib/report/render.ml: Array Buffer Dvs_analytical Float Int List Printf String
