lib/report/table.mli:
