(** Simulation-based program profiling (the paper's Section 5.1).

    For a program and an input, collects everything the MILP formulation
    needs:
    - [G_ij]: how often block [j] is entered through edge [(i, j)]
      (mode-independent — the program's logical behavior does not change
      with frequency);
    - [D_hij]: local-path counts — block [i] entered via [(h, i)] and
      exited via [(i, j)];
    - [T_jm], [E_jm]: per-invocation execution time and energy of block
      [j] pinned at mode [m], gathered by one full simulation per mode
      (time is {e not} a simple rescaling across modes because DRAM time
      is frequency-invariant).

    The virtual {e entry context} is represented by [None] in path
    predecessors, and the entry block is charged through a virtual entry
    edge (see {!Dvs_core.Formulation}). *)

type path = {
  pred : Dvs_ir.Cfg.label option;
      (** [None] for the program-entry invocation *)
  node : Dvs_ir.Cfg.label;
  succ : Dvs_ir.Cfg.label;
}

type t = {
  cfg : Dvs_ir.Cfg.t;
  config : Dvs_machine.Config.t;
  exec_count : int array;  (** per block *)
  edge_count : int array;  (** per {!Dvs_ir.Cfg.edge_index}; this is G *)
  entry_count : int;  (** entries through the virtual entry edge *)
  paths : (path * int) list;  (** D, every observed local path *)
  total_time : float array array;  (** [total_time.(m).(j)] *)
  total_energy : float array array;
  runs : Dvs_machine.Cpu.run_stats array;  (** the per-mode pinned runs *)
}

val collect :
  ?fuel:int -> Dvs_machine.Config.t -> Dvs_ir.Cfg.t -> memory:int array -> t
(** One simulation per mode in the config's table. *)

val block_time : t -> mode:int -> Dvs_ir.Cfg.label -> float
(** Average per-invocation time (0 for never-executed blocks). *)

val block_energy : t -> mode:int -> Dvs_ir.Cfg.label -> float

val g_of_edge : t -> Dvs_ir.Cfg.edge -> int

val pinned_time : t -> mode:int -> float
(** Whole-program wall time pinned at a mode (Table 4's columns). *)

val pinned_energy : t -> mode:int -> float

val pp_summary : Format.formatter -> t -> unit
