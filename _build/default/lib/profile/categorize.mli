(** Deriving the analytical model's program parameters (the paper's
    Table 7) from a pinned simulation run.

    The mapping is direct because the machine model was built around the
    same decomposition:
    - [n_overlap]  <- compute cycles issued while a miss was in flight;
    - [n_dependent] <- compute cycles with no miss in flight;
    - [n_cache]    <- cycles of cache-hit memory operations;
    - [t_invariant] <- union of miss-in-flight wall-clock intervals. *)

val params :
  Dvs_machine.Cpu.run_stats -> deadline:float -> Dvs_analytical.Params.t

val of_profile :
  ?mode:int -> Profile.t -> deadline:float -> Dvs_analytical.Params.t
(** Uses the pinned run at [mode] (default: the fastest). *)
