(** Ball-Larus efficient path profiling (MICRO'96), cited by the paper
    (Section 7) as the way to move the DVS optimization from edges to
    whole acyclic paths.

    Back edges (found by dominator analysis) are replaced by dummy
    entry/exit edges in the usual way, so every dynamic execution
    decomposes into acyclic path segments, each identified by a compact
    integer in [0, num_paths).  Counting works offline from a block
    trace; {!decode} maps ids back to block sequences. *)

type t

val compute : Dvs_ir.Cfg.t -> t
(** Path numbering for the CFG's acyclic skeleton.  Raises
    [Invalid_argument] if the number of static paths overflows (wildly
    branchy CFGs); fine for compiler-scale graphs. *)

val num_paths : t -> int
(** Number of distinct static acyclic paths. *)

val count_trace : t -> Dvs_ir.Cfg.label list -> (int * int) list
(** [count_trace t blocks] decomposes an executed block sequence (as
    recorded by {!Dvs_ir.Interp.run} with [~trace:true], or a machine
    observer) into path segments and returns [(path_id, count)] pairs,
    most frequent first. *)

val decode : t -> int -> Dvs_ir.Cfg.label list
(** The block sequence of a path id (without the virtual entry/exit).
    Raises [Invalid_argument] for out-of-range ids. *)

val path_of_blocks : t -> Dvs_ir.Cfg.label list -> int
(** Inverse of {!decode} for a valid acyclic segment.  Raises
    [Invalid_argument] if the sequence is not a countable segment. *)
