open Dvs_ir

(* Virtual nodes get labels [n] (entry) and [n+1] (exit). *)

type t = {
  cfg : Cfg.t;
  ventry : int;
  vexit : int;
  dag_succs : (int * int) list array;
      (* per node: (successor, edge value), in decreasing-value order *)
  num_paths : int;
  edge_val : (int * int, int) Hashtbl.t;  (* (src, dst) -> value *)
  is_back_edge : (int * int, unit) Hashtbl.t;
}

let num_paths t = t.num_paths

let compute cfg =
  let n = Cfg.num_blocks cfg in
  let ventry = n and vexit = n + 1 in
  let dom = Dominators.compute cfg in
  let is_back_edge = Hashtbl.create 8 in
  List.iter
    (fun (e : Cfg.edge) -> Hashtbl.replace is_back_edge (e.src, e.dst) ())
    (Dominators.back_edges cfg dom);
  (* DAG adjacency (deduplicated). *)
  let succs = Array.make (n + 2) [] in
  let seen = Hashtbl.create 64 in
  let add_edge src dst =
    if not (Hashtbl.mem seen (src, dst)) then begin
      Hashtbl.replace seen (src, dst) ();
      succs.(src) <- dst :: succs.(src)
    end
  in
  add_edge ventry (Cfg.entry cfg);
  Array.iter
    (fun (blk : Cfg.block) ->
      if Dominators.reachable dom blk.label then begin
        (match blk.term with Cfg.Halt -> add_edge blk.label vexit | _ -> ());
        List.iter
          (fun dst ->
            if Hashtbl.mem is_back_edge (blk.label, dst) then begin
              (* Replace the back edge by dummy entry/exit edges. *)
              add_edge ventry dst;
              add_edge blk.label vexit
            end
            else add_edge blk.label dst)
          (Cfg.successors cfg blk.label)
      end)
    (Cfg.blocks cfg);
  (* Reverse topological order by DFS. *)
  let state = Array.make (n + 2) `White in
  let order = ref [] in
  let rec dfs v =
    match state.(v) with
    | `Black -> ()
    | `Grey -> invalid_arg "Ball_larus.compute: residual cycle"
    | `White ->
      state.(v) <- `Grey;
      List.iter dfs succs.(v);
      state.(v) <- `Black;
      order := v :: !order
  in
  dfs ventry;
  (* NumPaths and edge values, processing in reverse topological order. *)
  let np = Array.make (n + 2) 0 in
  let edge_val = Hashtbl.create 64 in
  np.(vexit) <- 1;
  List.rev !order
  |> List.iter (fun v ->
         if v <> vexit then begin
           let acc = ref 0 in
           List.iter
             (fun w ->
               Hashtbl.replace edge_val (v, w) !acc;
               if np.(w) > max_int - !acc then
                 invalid_arg "Ball_larus.compute: path count overflow";
               acc := !acc + np.(w))
             succs.(v);
           np.(v) <- !acc
         end);
  let dag_succs =
    Array.mapi
      (fun v ws ->
        List.map (fun w -> (w, Hashtbl.find edge_val (v, w))) ws
        |> List.sort (fun (_, a) (_, b) -> compare b a))
      succs
  in
  { cfg; ventry; vexit; dag_succs; num_paths = np.(ventry); edge_val;
    is_back_edge }

let value t src dst =
  match Hashtbl.find_opt t.edge_val (src, dst) with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Ball_larus: (%d, %d) is not a DAG edge" src dst)

let count_trace t blocks =
  let counts = Hashtbl.create 64 in
  let bump id =
    Hashtbl.replace counts id
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts id))
  in
  (match blocks with
  | [] -> ()
  | first :: _ ->
    let r = ref (value t t.ventry first) in
    let rec walk = function
      | a :: (b :: _ as rest) ->
        if Hashtbl.mem t.is_back_edge (a, b) then begin
          bump (!r + value t a t.vexit);
          r := value t t.ventry b
        end
        else r := !r + value t a b;
        walk rest
      | [ last ] -> bump (!r + value t last t.vexit)
      | [] -> ()
    in
    walk blocks);
  Hashtbl.fold (fun id c acc -> (id, c) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let decode t id =
  if id < 0 || id >= t.num_paths then
    invalid_arg "Ball_larus.decode: path id out of range";
  let rec walk v remaining acc =
    if v = t.vexit then List.rev acc
    else begin
      (* Successors are sorted by decreasing value: the first whose value
         does not exceed [remaining] is the one this path took. *)
      match
        List.find_opt (fun (_, value) -> value <= remaining) t.dag_succs.(v)
      with
      | Some (w, value) ->
        walk w (remaining - value) (if w = t.vexit then acc else w :: acc)
      | None -> assert false (* values include 0 *)
    end
  in
  walk t.ventry id []

let path_of_blocks t blocks =
  match blocks with
  | [] -> invalid_arg "Ball_larus.path_of_blocks: empty segment"
  | first :: _ ->
    let rec walk acc = function
      | a :: (b :: _ as rest) -> walk (acc + value t a b) rest
      | [ last ] -> acc + value t last t.vexit
      | [] -> assert false
    in
    walk (value t t.ventry first) blocks
