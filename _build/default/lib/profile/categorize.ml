open Dvs_machine

let params (r : Cpu.run_stats) ~deadline =
  Dvs_analytical.Params.make
    ~n_overlap:(float_of_int r.Cpu.overlap_cycles)
    ~n_dependent:(float_of_int r.Cpu.dependent_cycles)
    ~n_cache:(float_of_int r.Cpu.cache_hit_cycles)
    ~t_invariant:r.Cpu.miss_busy_time ~t_deadline:deadline

let of_profile ?mode (p : Profile.t) ~deadline =
  let mode =
    match mode with Some m -> m | None -> Array.length p.Profile.runs - 1
  in
  params p.Profile.runs.(mode) ~deadline
