lib/profile/ball_larus.ml: Array Cfg Dominators Dvs_ir Hashtbl List Option Printf
