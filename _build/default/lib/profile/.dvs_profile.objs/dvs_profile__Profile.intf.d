lib/profile/profile.mli: Dvs_ir Dvs_machine Format
