lib/profile/profile.ml: Array Cfg Config Cpu Dvs_ir Dvs_machine Dvs_power Format Hashtbl List Option
