lib/profile/categorize.ml: Array Cpu Dvs_analytical Dvs_machine Profile
