lib/profile/categorize.mli: Dvs_analytical Dvs_machine Profile
