lib/profile/ball_larus.mli: Dvs_ir
