type binop =
  | Add | Sub | Mul | Div | Rem
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor
  | Band | Bor | Bxor | Shl | Shr

type unop = Neg | Not

type expr =
  | Int of int
  | Var of string
  | Index of string * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list

type stmt =
  | Assign of string * expr option * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr

type decl = { d_name : string; d_size : int option }

type func = { f_name : string; f_params : string list; f_body : stmt list }

type program = { decls : decl list; funcs : func list; body : stmt list }

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Land -> "&&" | Lor -> "||"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"

let rec pp_expr ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Var v -> Format.pp_print_string ppf v
  | Index (v, e) -> Format.fprintf ppf "%s[%a]" v pp_expr e
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Unop (Neg, e) -> Format.fprintf ppf "(-%a)" pp_expr e
  | Unop (Not, e) -> Format.fprintf ppf "(!%a)" pp_expr e
  | Call (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_expr)
      args

let rec pp_stmt ppf = function
  | Assign (v, None, e) -> Format.fprintf ppf "%s = %a;" v pp_expr e
  | Assign (v, Some i, e) ->
    Format.fprintf ppf "%s[%a] = %a;" v pp_expr i pp_expr e
  | If (c, t, []) ->
    Format.fprintf ppf "@[<v 2>if (%a) {%a@]@,}" pp_expr c pp_stmts t
  | If (c, t, e) ->
    Format.fprintf ppf "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}"
      pp_expr c pp_stmts t pp_stmts e
  | While (c, b) ->
    Format.fprintf ppf "@[<v 2>while (%a) {%a@]@,}" pp_expr c pp_stmts b
  | For (init, cond, step, b) ->
    let pp_opt_stmt ppf = function
      | Some (Assign _ as s) -> pp_stmt_inline ppf s
      | Some _ | None -> ()
    in
    let pp_opt_expr ppf = function
      | Some e -> pp_expr ppf e
      | None -> ()
    in
    Format.fprintf ppf "@[<v 2>for (%a; %a; %a) {%a@]@,}" pp_opt_stmt init
      pp_opt_expr cond pp_opt_stmt step pp_stmts b
  | Return e -> Format.fprintf ppf "return %a;" pp_expr e

and pp_stmt_inline ppf = function
  | Assign (v, None, e) -> Format.fprintf ppf "%s = %a" v pp_expr e
  | Assign (v, Some i, e) ->
    Format.fprintf ppf "%s[%a] = %a" v pp_expr i pp_expr e
  | s -> pp_stmt ppf s

and pp_stmts ppf stmts =
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_stmt s) stmts

let pp_program ppf p =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun d ->
      match d.d_size with
      | None -> Format.fprintf ppf "int %s;@," d.d_name
      | Some n -> Format.fprintf ppf "int %s[%d];@," d.d_name n)
    p.decls;
  List.iter
    (fun f ->
      Format.fprintf ppf "@[<v 2>int %s(%s) {%a@]@,}@," f.f_name
        (String.concat ", " f.f_params)
        pp_stmts f.f_body)
    p.funcs;
  List.iter (fun s -> Format.fprintf ppf "%a@," pp_stmt s) p.body;
  Format.fprintf ppf "@]"
