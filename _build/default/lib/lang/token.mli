(** Lexical tokens of MiniC, with source positions for error reporting. *)

type pos = { line : int; col : int }

type kind =
  | INT_LIT of int
  | IDENT of string
  | KW_INT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | ASSIGN  (** [=] *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR
  | ANDAND | OROR | BANG
  | EQ | NE | LT | LE | GT | GE
  | EOF

type t = { kind : kind; pos : pos }

val pp_kind : Format.formatter -> kind -> unit

val pp_pos : Format.formatter -> pos -> unit
