exception Error of string * Token.pos

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.off < String.length st.src then Some st.src.[st.off] else None

let peek2 st =
  if st.off + 1 < String.length st.src then Some st.src.[st.off + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.off <- st.off + 1

let pos st = { Token.line = st.line; col = st.col }

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let keyword = function
  | "int" -> Some Token.KW_INT
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "while" -> Some Token.KW_WHILE
  | "for" -> Some Token.KW_FOR
  | "return" -> Some Token.KW_RETURN
  | _ -> None

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    let start = pos st in
    advance st;
    advance st;
    let rec close () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | Some _, _ ->
        advance st;
        close ()
      | None, _ -> raise (Error ("unterminated block comment", start))
    in
    close ();
    skip_trivia st
  | Some _ | None -> ()

let lex_number st =
  let p = pos st in
  let start = st.off in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.off - start) in
  { Token.kind = INT_LIT (int_of_string text); pos = p }

let lex_ident st =
  let p = pos st in
  let start = st.off in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.off - start) in
  let kind =
    match keyword text with Some k -> k | None -> Token.IDENT text
  in
  { Token.kind; pos = p }

let lex_operator st =
  let p = pos st in
  let single kind =
    advance st;
    { Token.kind; pos = p }
  in
  let double kind =
    advance st;
    advance st;
    { Token.kind; pos = p }
  in
  match (peek st, peek2 st) with
  | Some '&', Some '&' -> double Token.ANDAND
  | Some '|', Some '|' -> double Token.OROR
  | Some '=', Some '=' -> double Token.EQ
  | Some '!', Some '=' -> double Token.NE
  | Some '<', Some '=' -> double Token.LE
  | Some '>', Some '=' -> double Token.GE
  | Some '<', Some '<' -> double Token.SHL
  | Some '>', Some '>' -> double Token.SHR
  | Some '(', _ -> single Token.LPAREN
  | Some ')', _ -> single Token.RPAREN
  | Some '{', _ -> single Token.LBRACE
  | Some '}', _ -> single Token.RBRACE
  | Some '[', _ -> single Token.LBRACKET
  | Some ']', _ -> single Token.RBRACKET
  | Some ';', _ -> single Token.SEMI
  | Some ',', _ -> single Token.COMMA
  | Some '=', _ -> single Token.ASSIGN
  | Some '+', _ -> single Token.PLUS
  | Some '-', _ -> single Token.MINUS
  | Some '*', _ -> single Token.STAR
  | Some '/', _ -> single Token.SLASH
  | Some '%', _ -> single Token.PERCENT
  | Some '&', _ -> single Token.AMP
  | Some '|', _ -> single Token.PIPE
  | Some '^', _ -> single Token.CARET
  | Some '!', _ -> single Token.BANG
  | Some '<', _ -> single Token.LT
  | Some '>', _ -> single Token.GT
  | Some c, _ ->
    raise (Error (Printf.sprintf "unexpected character %C" c, p))
  | None, _ -> { Token.kind = EOF; pos = p }

let tokenize src =
  let st = { src; off = 0; line = 1; col = 1 } in
  let rec loop acc =
    skip_trivia st;
    match peek st with
    | None -> List.rev ({ Token.kind = EOF; pos = pos st } :: acc)
    | Some c when is_digit c -> loop (lex_number st :: acc)
    | Some c when is_ident_start c -> loop (lex_ident st :: acc)
    | Some _ -> loop (lex_operator st :: acc)
  in
  loop []
