(** Static checks for MiniC programs.

    Everything is an [int], so "type" checking is really shape checking:
    names must be declared exactly once, scalars must not be indexed,
    arrays must be indexed, and statically constant indices must be in
    bounds. *)

type shape = Scalar | Array of int

type env = (string * shape) list

exception Error of string

val check : Ast.program -> env
(** Returns the symbol table on success; raises {!Error} otherwise. *)
