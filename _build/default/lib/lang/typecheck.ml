type shape = Scalar | Array of int

type env = (string * shape) list

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let lookup env name =
  match List.assoc_opt name env with
  | Some s -> s
  | None -> fail "undeclared variable %s" name

(* [funcs]: functions callable here (name -> arity); empty inside
   contexts that forbid calls. *)
let rec check_expr env funcs = function
  | Ast.Int _ -> ()
  | Ast.Var name -> (
    match lookup env name with
    | Scalar -> ()
    | Array _ -> fail "array %s used without an index" name)
  | Ast.Index (name, idx) -> (
    check_expr env funcs idx;
    match lookup env name with
    | Scalar -> fail "scalar %s used with an index" name
    | Array n -> (
      match idx with
      | Ast.Int i when i < 0 || i >= n ->
        fail "index %d out of bounds for %s[%d]" i name n
      | _ -> ()))
  | Ast.Binop (_, a, b) ->
    check_expr env funcs a;
    check_expr env funcs b
  | Ast.Unop (_, e) -> check_expr env funcs e
  | Ast.Call (f, args) -> (
    List.iter (check_expr env funcs) args;
    match List.assoc_opt f funcs with
    | None ->
      fail "call to unknown function %s (functions must be defined before \
            use; recursion is not supported)" f
    | Some arity ->
      if List.length args <> arity then
        fail "%s expects %d argument(s), got %d" f arity (List.length args))

let rec check_stmt env funcs = function
  | Ast.Assign (name, idx, rhs) -> (
    check_expr env funcs rhs;
    match (lookup env name, idx) with
    | Scalar, None -> ()
    | Scalar, Some _ -> fail "scalar %s assigned with an index" name
    | Array _, None -> fail "array %s assigned without an index" name
    | Array n, Some ie -> (
      check_expr env funcs ie;
      match ie with
      | Ast.Int i when i < 0 || i >= n ->
        fail "index %d out of bounds for %s[%d]" i name n
      | _ -> ()))
  | Ast.If (c, t, e) ->
    check_expr env funcs c;
    List.iter (check_stmt env funcs) t;
    List.iter (check_stmt env funcs) e
  | Ast.While (c, b) ->
    check_expr env funcs c;
    List.iter (check_stmt env funcs) b
  | Ast.For (init, cond, step, b) ->
    Option.iter (check_stmt env funcs) init;
    Option.iter (check_expr env funcs) cond;
    Option.iter (check_stmt env funcs) step;
    List.iter (check_stmt env funcs) b
  | Ast.Return _ -> fail "return outside a function body"

(* Function bodies: [Return] must be the one final statement. *)
let check_func_body env funcs (f : Ast.func) =
  let rec split acc = function
    | [] -> fail "function %s must end with a return" f.f_name
    | [ Ast.Return e ] -> (List.rev acc, e)
    | Ast.Return _ :: _ ->
      fail "return must be the final statement of %s" f.f_name
    | s :: rest -> split (s :: acc) rest
  in
  let body, ret = split [] f.f_body in
  List.iter (check_stmt env funcs) body;
  check_expr env funcs ret

let check (p : Ast.program) =
  let env =
    List.fold_left
      (fun env (d : Ast.decl) ->
        if List.mem_assoc d.d_name env then
          fail "duplicate declaration of %s" d.d_name
        else begin
          let shape =
            match d.d_size with
            | None -> Scalar
            | Some n when n > 0 -> Array n
            | Some n -> fail "array %s has non-positive size %d" d.d_name n
          in
          (d.d_name, shape) :: env
        end)
      [] p.decls
  in
  let funcs =
    List.fold_left
      (fun funcs (f : Ast.func) ->
        if List.mem_assoc f.Ast.f_name funcs then
          fail "duplicate function %s" f.Ast.f_name;
        if List.mem_assoc f.Ast.f_name env then
          fail "%s is both a variable and a function" f.Ast.f_name;
        let param_env =
          List.fold_left
            (fun acc pname ->
              if List.mem_assoc pname acc || List.mem_assoc pname env then
                fail "parameter %s of %s shadows another name" pname
                  f.Ast.f_name;
              (pname, Scalar) :: acc)
            [] f.Ast.f_params
        in
        check_func_body (param_env @ env) funcs f;
        (f.Ast.f_name, List.length f.Ast.f_params) :: funcs)
      [] p.funcs
  in
  List.iter (check_stmt env funcs) p.body;
  List.rev env
