(** Recursive-descent parser for MiniC.

    Grammar (C-like precedence, lowest first:
    [|| && | ^ & ==/!= relational shifts additive multiplicative unary]):

    {v
    program := { decl | func | stmt }
    decl    := "int" IDENT ("[" INT "]")? ";"
    func    := "int" IDENT "(" params? ")" block
    params  := ["int"] IDENT { "," ["int"] IDENT }
    stmt    := IDENT ("[" expr "]")? "=" expr ";"
             | "if" "(" expr ")" block ("else" (block | if-stmt))?
             | "while" "(" expr ")" block
             | "for" "(" simple? ";" expr? ";" simple? ")" block
             | "return" expr ";"        (last statement of a func body)
    simple  := IDENT ("[" expr "]")? "=" expr
    block   := "{" { stmt } "}"
    primary := INT | IDENT | IDENT "[" expr "]"
             | IDENT "(" [ expr { "," expr } ] ")" | "(" expr ")"
    v} *)

exception Error of string * Token.pos

val parse : string -> Ast.program
(** Raises {!Error} or {!Lexer.Error}. *)
