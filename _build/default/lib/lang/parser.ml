exception Error of string * Token.pos

type state = { mutable toks : Token.t list }

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> assert false (* the stream always ends with EOF *)

let advance st =
  match st.toks with
  | { kind = Token.EOF; _ } :: _ -> ()
  | _ :: rest -> st.toks <- rest
  | [] -> assert false

let expect st kind what =
  let t = peek st in
  if t.Token.kind = kind then advance st
  else
    raise
      (Error
         ( Format.asprintf "expected %s but found %a" what Token.pp_kind
             t.Token.kind,
           t.Token.pos ))

(* Binary operator precedence, lowest binds loosest. *)
let binop_of_token = function
  | Token.OROR -> Some (1, Ast.Lor)
  | Token.ANDAND -> Some (2, Ast.Land)
  | Token.PIPE -> Some (3, Ast.Bor)
  | Token.CARET -> Some (4, Ast.Bxor)
  | Token.AMP -> Some (5, Ast.Band)
  | Token.EQ -> Some (6, Ast.Eq)
  | Token.NE -> Some (6, Ast.Ne)
  | Token.LT -> Some (7, Ast.Lt)
  | Token.LE -> Some (7, Ast.Le)
  | Token.GT -> Some (7, Ast.Gt)
  | Token.GE -> Some (7, Ast.Ge)
  | Token.SHL -> Some (8, Ast.Shl)
  | Token.SHR -> Some (8, Ast.Shr)
  | Token.PLUS -> Some (9, Ast.Add)
  | Token.MINUS -> Some (9, Ast.Sub)
  | Token.STAR -> Some (10, Ast.Mul)
  | Token.SLASH -> Some (10, Ast.Div)
  | Token.PERCENT -> Some (10, Ast.Rem)
  | _ -> None

let rec parse_expr st = parse_binary st 1

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_loop = ref true in
  while !continue_loop do
    match binop_of_token (peek st).Token.kind with
    | Some (prec, op) when prec >= min_prec ->
      advance st;
      let rhs = parse_binary st (prec + 1) in
      lhs := Ast.Binop (op, !lhs, rhs)
    | Some _ | None -> continue_loop := false
  done;
  !lhs

and parse_unary st =
  let t = peek st in
  match t.Token.kind with
  | Token.MINUS ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | Token.BANG ->
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  let t = peek st in
  match t.Token.kind with
  | Token.INT_LIT n ->
    advance st;
    Ast.Int n
  | Token.IDENT name ->
    advance st;
    if (peek st).Token.kind = Token.LBRACKET then begin
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET "']'";
      Ast.Index (name, idx)
    end
    else if (peek st).Token.kind = Token.LPAREN then begin
      advance st;
      let rec args acc =
        if (peek st).Token.kind = Token.RPAREN then begin
          advance st;
          List.rev acc
        end
        else begin
          let a = parse_expr st in
          if (peek st).Token.kind = Token.COMMA then begin
            advance st;
            args (a :: acc)
          end
          else begin
            expect st Token.RPAREN "')'";
            List.rev (a :: acc)
          end
        end
      in
      Ast.Call (name, args [])
    end
    else Ast.Var name
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN "')'";
    e
  | k ->
    raise
      (Error
         ( Format.asprintf "expected an expression but found %a" Token.pp_kind
             k,
           t.Token.pos ))

(* IDENT ("[" expr "]")? "=" expr  — without the trailing semicolon. *)
let parse_simple_assign st =
  let t = peek st in
  match t.Token.kind with
  | Token.IDENT name ->
    advance st;
    let idx =
      if (peek st).Token.kind = Token.LBRACKET then begin
        advance st;
        let e = parse_expr st in
        expect st Token.RBRACKET "']'";
        Some e
      end
      else None
    in
    expect st Token.ASSIGN "'='";
    let rhs = parse_expr st in
    Ast.Assign (name, idx, rhs)
  | k ->
    raise
      (Error
         ( Format.asprintf "expected an assignment but found %a" Token.pp_kind
             k,
           t.Token.pos ))

let rec parse_stmt st =
  let t = peek st in
  match t.Token.kind with
  | Token.IDENT _ ->
    let s = parse_simple_assign st in
    expect st Token.SEMI "';'";
    s
  | Token.KW_IF ->
    advance st;
    expect st Token.LPAREN "'('";
    let cond = parse_expr st in
    expect st Token.RPAREN "')'";
    let then_branch = parse_block st in
    let else_branch =
      if (peek st).Token.kind = Token.KW_ELSE then begin
        advance st;
        if (peek st).Token.kind = Token.KW_IF then [ parse_stmt st ]
        else parse_block st
      end
      else []
    in
    Ast.If (cond, then_branch, else_branch)
  | Token.KW_WHILE ->
    advance st;
    expect st Token.LPAREN "'('";
    let cond = parse_expr st in
    expect st Token.RPAREN "')'";
    Ast.While (cond, parse_block st)
  | Token.KW_RETURN ->
    advance st;
    let e = parse_expr st in
    expect st Token.SEMI "';'";
    Ast.Return e
  | Token.KW_FOR ->
    advance st;
    expect st Token.LPAREN "'('";
    let init =
      if (peek st).Token.kind = Token.SEMI then None
      else Some (parse_simple_assign st)
    in
    expect st Token.SEMI "';'";
    let cond =
      if (peek st).Token.kind = Token.SEMI then None else Some (parse_expr st)
    in
    expect st Token.SEMI "';'";
    let step =
      if (peek st).Token.kind = Token.RPAREN then None
      else Some (parse_simple_assign st)
    in
    expect st Token.RPAREN "')'";
    Ast.For (init, cond, step, parse_block st)
  | k ->
    raise
      (Error
         (Format.asprintf "expected a statement but found %a" Token.pp_kind k,
          t.Token.pos))

and parse_block st =
  expect st Token.LBRACE "'{'";
  let rec loop acc =
    if (peek st).Token.kind = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

(* After 'int IDENT': either a declaration or a function definition. *)
let parse_decl_or_func st =
  expect st Token.KW_INT "'int'";
  let t = peek st in
  match t.Token.kind with
  | Token.IDENT name -> (
    advance st;
    match (peek st).Token.kind with
    | Token.LBRACKET -> (
      advance st;
      let t = peek st in
      match t.Token.kind with
      | Token.INT_LIT n when n > 0 ->
        advance st;
        expect st Token.RBRACKET "']'";
        expect st Token.SEMI "';'";
        `Decl { Ast.d_name = name; d_size = Some n }
      | k ->
        raise
          (Error
             ( Format.asprintf
                 "array size must be a positive literal, found %a"
                 Token.pp_kind k,
               t.Token.pos )))
    | Token.LPAREN ->
      advance st;
      let rec params acc =
        (* Each parameter may carry an optional C-style 'int'. *)
        if (peek st).Token.kind = Token.KW_INT then advance st;
        match (peek st).Token.kind with
        | Token.RPAREN ->
          advance st;
          List.rev acc
        | Token.IDENT p -> (
          advance st;
          match (peek st).Token.kind with
          | Token.COMMA ->
            advance st;
            params (p :: acc)
          | _ ->
            expect st Token.RPAREN "')'";
            List.rev (p :: acc))
        | k ->
          raise
            (Error
               ( Format.asprintf "expected a parameter name, found %a"
                   Token.pp_kind k,
                 (peek st).Token.pos ))
      in
      let f_params = params [] in
      let f_body = parse_block st in
      `Func { Ast.f_name = name; f_params; f_body }
    | _ ->
      expect st Token.SEMI "';'";
      `Decl { Ast.d_name = name; d_size = None })
  | k ->
    raise
      (Error
         ( Format.asprintf "expected a name after 'int', found %a"
             Token.pp_kind k,
           t.Token.pos ))

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let rec loop decls funcs stmts =
    match (peek st).Token.kind with
    | Token.EOF ->
      { Ast.decls = List.rev decls; funcs = List.rev funcs;
        body = List.rev stmts }
    | Token.KW_INT -> (
      match parse_decl_or_func st with
      | `Decl d -> loop (d :: decls) funcs stmts
      | `Func f -> loop decls (f :: funcs) stmts)
    | _ -> loop decls funcs (parse_stmt st :: stmts)
  in
  loop [] [] []
