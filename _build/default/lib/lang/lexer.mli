(** Hand-written lexer for MiniC.

    Supports decimal integer literals, C identifiers, [//] line comments
    and [/* ... */] block comments. *)

exception Error of string * Token.pos

val tokenize : string -> Token.t list
(** The token stream, always ending with {!Token.EOF}.
    Raises {!Error} on unexpected characters or unterminated comments. *)
