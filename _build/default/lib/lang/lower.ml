open Dvs_ir

type layout = {
  arrays : (string * int * int) list;
  memory_words : int;
  scalars : (string * Instr.reg) list;
}

let array_base layout name =
  let _, base, _ =
    List.find (fun (n, _, _) -> n = name) layout.arrays
  in
  base

type state = {
  builder : Cfg.Builder.t;
  mutable current : Cfg.label;
  mutable next_reg : Instr.reg;
  layout : layout;
  zero : Instr.reg;
}

let fresh st =
  let r = st.next_reg in
  st.next_reg <- r + 1;
  r

let emit st i = Cfg.Builder.push st.builder st.current i

let scalar_reg st name = List.assoc name st.layout.scalars

let binop_of_ast : Ast.binop -> Instr.binop option = function
  | Ast.Add -> Some Instr.Add
  | Ast.Sub -> Some Instr.Sub
  | Ast.Mul -> Some Instr.Mul
  | Ast.Div -> Some Instr.Div
  | Ast.Rem -> Some Instr.Rem
  | Ast.Lt -> Some Instr.Slt
  | Ast.Le -> Some Instr.Sle
  | Ast.Eq -> Some Instr.Seq
  | Ast.Ne -> Some Instr.Sne
  | Ast.Band -> Some Instr.And
  | Ast.Bor -> Some Instr.Or
  | Ast.Bxor -> Some Instr.Xor
  | Ast.Shl -> Some Instr.Shl
  | Ast.Shr -> Some Instr.Shr
  | Ast.Gt | Ast.Ge | Ast.Land | Ast.Lor -> None

let rec lower_expr st (e : Ast.expr) : Instr.reg =
  match e with
  | Ast.Int n ->
    let r = fresh st in
    emit st (Instr.Li (r, n));
    r
  | Ast.Var name -> scalar_reg st name
  | Ast.Index (name, idx) ->
    let ri = lower_expr st idx in
    let rd = fresh st in
    emit st (Instr.Load (rd, ri, array_base st.layout name));
    rd
  | Ast.Unop (Ast.Neg, e) ->
    let re = lower_expr st e in
    let rd = fresh st in
    emit st (Instr.Binop (Instr.Sub, rd, st.zero, re));
    rd
  | Ast.Unop (Ast.Not, e) ->
    let re = lower_expr st e in
    let rd = fresh st in
    emit st (Instr.Binop (Instr.Seq, rd, re, st.zero));
    rd
  | Ast.Binop (Ast.Gt, a, b) -> lower_expr st (Ast.Binop (Ast.Lt, b, a))
  | Ast.Binop (Ast.Ge, a, b) -> lower_expr st (Ast.Binop (Ast.Le, b, a))
  | Ast.Binop (Ast.Land, a, b) ->
    let na = normalized st a and nb = normalized st b in
    let rd = fresh st in
    emit st (Instr.Binop (Instr.And, rd, na, nb));
    rd
  | Ast.Binop (Ast.Lor, a, b) ->
    let na = normalized st a and nb = normalized st b in
    let rd = fresh st in
    emit st (Instr.Binop (Instr.Or, rd, na, nb));
    rd
  | Ast.Binop (op, a, b) -> (
    let ra = lower_expr st a in
    let rb = lower_expr st b in
    let rd = fresh st in
    match binop_of_ast op with
    | Some iop ->
      emit st (Instr.Binop (iop, rd, ra, rb));
      rd
    | None -> assert false (* handled above *))
  | Ast.Call _ -> assert false (* eliminated by Inline.expand *)

(* 0/1 view of an expression (for logical operators). *)
and normalized st e =
  let r = lower_expr st e in
  let rd = fresh st in
  emit st (Instr.Binop (Instr.Sne, rd, r, st.zero));
  rd

let rec lower_stmt st (s : Ast.stmt) =
  match s with
  | Ast.Assign (name, None, Ast.Index (arr, idx)) ->
    (* Load straight into the scalar's register: `t = a[i]` then
       independent computation genuinely overlaps an outstanding miss
       (a Mov would consume the loaded value immediately and stall). *)
    let ri = lower_expr st idx in
    emit st (Instr.Load (scalar_reg st name, ri, array_base st.layout arr))
  | Ast.Assign (name, None, rhs) ->
    let r = lower_expr st rhs in
    emit st (Instr.Mov (scalar_reg st name, r))
  | Ast.Assign (name, Some idx, rhs) ->
    let rv = lower_expr st rhs in
    let ri = lower_expr st idx in
    emit st (Instr.Store (rv, ri, array_base st.layout name))
  | Ast.If (cond, then_s, else_s) ->
    let rc = lower_expr st cond in
    let then_l = Cfg.Builder.add_block ~name:"then" st.builder in
    let join_l = Cfg.Builder.add_block ~name:"join" st.builder in
    let else_l =
      if else_s = [] then join_l
      else Cfg.Builder.add_block ~name:"else" st.builder
    in
    Cfg.Builder.set_term st.builder st.current (Cfg.Branch (rc, then_l, else_l));
    st.current <- then_l;
    List.iter (lower_stmt st) then_s;
    Cfg.Builder.set_term st.builder st.current (Cfg.Jump join_l);
    if else_s <> [] then begin
      st.current <- else_l;
      List.iter (lower_stmt st) else_s;
      Cfg.Builder.set_term st.builder st.current (Cfg.Jump join_l)
    end;
    st.current <- join_l
  | Ast.While (cond, body) ->
    let head_l = Cfg.Builder.add_block ~name:"while.head" st.builder in
    Cfg.Builder.set_term st.builder st.current (Cfg.Jump head_l);
    st.current <- head_l;
    let rc = lower_expr st cond in
    let body_l = Cfg.Builder.add_block ~name:"while.body" st.builder in
    let exit_l = Cfg.Builder.add_block ~name:"while.exit" st.builder in
    Cfg.Builder.set_term st.builder st.current (Cfg.Branch (rc, body_l, exit_l));
    st.current <- body_l;
    List.iter (lower_stmt st) body;
    Cfg.Builder.set_term st.builder st.current (Cfg.Jump head_l);
    st.current <- exit_l
  | Ast.For (init, cond, step, body) ->
    Option.iter (lower_stmt st) init;
    let cond = match cond with Some c -> c | None -> Ast.Int 1 in
    let body' = body @ (match step with Some s -> [ s ] | None -> []) in
    lower_stmt st (Ast.While (cond, body'))
  | Ast.Return _ -> assert false (* eliminated by Inline.expand *)

let compile (p : Ast.program) =
  (* User-facing checks (including the function rules) run on the source
     program; inlining then removes functions, and the expanded program
     is re-checked as a sanity pass. *)
  let _ = Typecheck.check p in
  let p = Inline.expand p in
  let env = Typecheck.check p in
  (* Memory layout and scalar registers. *)
  let arrays = ref [] and scalars = ref [] in
  let next_addr = ref 0 and next_reg = ref 0 in
  List.iter
    (fun (name, shape) ->
      match shape with
      | Typecheck.Scalar ->
        scalars := (name, !next_reg) :: !scalars;
        incr next_reg
      | Typecheck.Array n ->
        arrays := (name, !next_addr, n) :: !arrays;
        next_addr := !next_addr + n)
    env;
  let zero = !next_reg in
  incr next_reg;
  let layout =
    { arrays = List.rev !arrays; memory_words = !next_addr;
      scalars = List.rev !scalars }
  in
  let builder = Cfg.Builder.create () in
  let entry = Cfg.Builder.add_block ~name:"entry" builder in
  let st = { builder; current = entry; next_reg = !next_reg; layout; zero } in
  emit st (Instr.Li (zero, 0));
  List.iter (lower_stmt st) p.body;
  Cfg.Builder.set_term st.builder st.current Cfg.Halt;
  (Cfg.Builder.finish builder ~entry, layout)

let compile_string src = compile (Parser.parse src)
