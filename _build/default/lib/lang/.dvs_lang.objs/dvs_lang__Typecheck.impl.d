lib/lang/typecheck.ml: Ast List Option Printf
