lib/lang/lower.ml: Ast Cfg Dvs_ir Inline Instr List Option Parser Typecheck
