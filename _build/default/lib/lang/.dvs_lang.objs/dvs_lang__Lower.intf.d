lib/lang/lower.mli: Ast Dvs_ir
