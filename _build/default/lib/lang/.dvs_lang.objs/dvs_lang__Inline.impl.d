lib/lang/inline.ml: Ast Hashtbl List Option Printf
