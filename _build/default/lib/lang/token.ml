type pos = { line : int; col : int }

type kind =
  | INT_LIT of int
  | IDENT of string
  | KW_INT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR
  | ANDAND | OROR | BANG
  | EQ | NE | LT | LE | GT | GE
  | EOF

type t = { kind : kind; pos : pos }

let pp_kind ppf = function
  | INT_LIT n -> Format.fprintf ppf "%d" n
  | IDENT s -> Format.fprintf ppf "identifier %s" s
  | KW_INT -> Format.pp_print_string ppf "'int'"
  | KW_IF -> Format.pp_print_string ppf "'if'"
  | KW_ELSE -> Format.pp_print_string ppf "'else'"
  | KW_WHILE -> Format.pp_print_string ppf "'while'"
  | KW_FOR -> Format.pp_print_string ppf "'for'"
  | KW_RETURN -> Format.pp_print_string ppf "'return'"
  | LPAREN -> Format.pp_print_string ppf "'('"
  | RPAREN -> Format.pp_print_string ppf "')'"
  | LBRACE -> Format.pp_print_string ppf "'{'"
  | RBRACE -> Format.pp_print_string ppf "'}'"
  | LBRACKET -> Format.pp_print_string ppf "'['"
  | RBRACKET -> Format.pp_print_string ppf "']'"
  | SEMI -> Format.pp_print_string ppf "';'"
  | COMMA -> Format.pp_print_string ppf "','"
  | ASSIGN -> Format.pp_print_string ppf "'='"
  | PLUS -> Format.pp_print_string ppf "'+'"
  | MINUS -> Format.pp_print_string ppf "'-'"
  | STAR -> Format.pp_print_string ppf "'*'"
  | SLASH -> Format.pp_print_string ppf "'/'"
  | PERCENT -> Format.pp_print_string ppf "'%'"
  | AMP -> Format.pp_print_string ppf "'&'"
  | PIPE -> Format.pp_print_string ppf "'|'"
  | CARET -> Format.pp_print_string ppf "'^'"
  | SHL -> Format.pp_print_string ppf "'<<'"
  | SHR -> Format.pp_print_string ppf "'>>'"
  | ANDAND -> Format.pp_print_string ppf "'&&'"
  | OROR -> Format.pp_print_string ppf "'||'"
  | BANG -> Format.pp_print_string ppf "'!'"
  | EQ -> Format.pp_print_string ppf "'=='"
  | NE -> Format.pp_print_string ppf "'!='"
  | LT -> Format.pp_print_string ppf "'<'"
  | LE -> Format.pp_print_string ppf "'<='"
  | GT -> Format.pp_print_string ppf "'>'"
  | GE -> Format.pp_print_string ppf "'>='"
  | EOF -> Format.pp_print_string ppf "end of input"

let pp_pos ppf p = Format.fprintf ppf "line %d, column %d" p.line p.col
