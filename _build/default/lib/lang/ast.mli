(** Abstract syntax of MiniC — the small imperative language the synthetic
    workloads are written in.

    Everything is an [int]; scalars live in registers after lowering,
    arrays live in simulated memory (which is what gives workloads their
    cache behavior). *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor  (** logical; non-short-circuit, operands normalized *)
  | Band | Bor | Bxor | Shl | Shr

type unop = Neg | Not

type expr =
  | Int of int
  | Var of string
  | Index of string * expr  (** array element *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
      (** function call; eliminated by {!Inline.expand} before lowering *)

type stmt =
  | Assign of string * expr option * expr
      (** [Assign (name, Some idx, e)] writes an array slot,
          [Assign (name, None, e)] a scalar. *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
      (** C-style [for (init; cond; step) body]; missing pieces default to
          no-op / true. *)
  | Return of expr
      (** only valid as the final statement of a function body *)

type decl = { d_name : string; d_size : int option }
(** [d_size = Some n] declares an array of [n] words, [None] a scalar. *)

type func = { f_name : string; f_params : string list; f_body : stmt list }
(** Functions take and return [int]s; the body sees parameters and
    globals and must end in [Return].  Calls are expanded by inlining
    (no recursion). *)

type program = { decls : decl list; funcs : func list; body : stmt list }

val pp_program : Format.formatter -> program -> unit
