(** Function inlining: rewrites a checked program into an equivalent one
    with no functions, calls, or returns.

    Every call site gets fresh scalar temporaries for its arguments and
    its result; the callee body (itself already call-free — functions
    are defined before use, so inlining proceeds in definition order) is
    spliced in with parameters renamed.  Loop conditions containing
    calls are rewritten into explicit condition temporaries re-evaluated
    per iteration ([for] loops desugar to [while] in that case).
    Argument evaluation order is left to right.

    Fresh names start with ["__"]. *)

val expand : Ast.program -> Ast.program
(** Requires a program that passed {!Typecheck.check}.  The result has
    [funcs = []], extra scalar declarations, and no [Call]/[Return]
    nodes. *)
