(** Lowering MiniC to the {!Dvs_ir} control-flow graph.

    Scalars are assigned dedicated virtual registers; arrays are laid out
    contiguously in simulated memory (word granularity), which is what
    exposes workloads to the cache hierarchy.  Logical operators are
    lowered non-short-circuit (both operands evaluate; results are
    normalized to 0/1). *)

type layout = {
  arrays : (string * int * int) list;
      (** (name, base address in words, size in words) *)
  memory_words : int;  (** total data segment size *)
  scalars : (string * Dvs_ir.Instr.reg) list;
}

val array_base : layout -> string -> int
(** Raises [Not_found] for unknown arrays. *)

val compile : Ast.program -> Dvs_ir.Cfg.t * layout
(** Runs {!Typecheck.check} first (so it can raise {!Typecheck.Error}). *)

val compile_string : string -> Dvs_ir.Cfg.t * layout
(** [compile_string src] parses and compiles. *)
