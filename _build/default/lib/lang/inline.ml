type state = {
  mutable counter : int;
  mutable new_decls : string list;  (* reversed *)
  expanded : (string, string list * Ast.stmt list * Ast.expr) Hashtbl.t;
      (* name -> (params, call-free body prefix, call-free return expr) *)
}

let fresh st hint =
  let name = Printf.sprintf "__%s%d" hint st.counter in
  st.counter <- st.counter + 1;
  st.new_decls <- name :: st.new_decls;
  name

(* Rename scalar occurrences per [map] (parameters are scalars; arrays
   are always globals and never renamed). *)
let rec rename_expr map (e : Ast.expr) =
  match e with
  | Ast.Int _ -> e
  | Ast.Var v -> (
    match List.assoc_opt v map with Some v' -> Ast.Var v' | None -> e)
  | Ast.Index (a, i) -> Ast.Index (a, rename_expr map i)
  | Ast.Binop (op, x, y) -> Ast.Binop (op, rename_expr map x, rename_expr map y)
  | Ast.Unop (op, x) -> Ast.Unop (op, rename_expr map x)
  | Ast.Call (f, args) -> Ast.Call (f, List.map (rename_expr map) args)

let rec rename_stmt map (s : Ast.stmt) =
  match s with
  | Ast.Assign (v, idx, rhs) ->
    let v = match List.assoc_opt v map with Some v' -> v' | None -> v in
    Ast.Assign (v, Option.map (rename_expr map) idx, rename_expr map rhs)
  | Ast.If (c, t, e) ->
    Ast.If (rename_expr map c, List.map (rename_stmt map) t,
            List.map (rename_stmt map) e)
  | Ast.While (c, b) ->
    Ast.While (rename_expr map c, List.map (rename_stmt map) b)
  | Ast.For (init, cond, step, b) ->
    Ast.For (Option.map (rename_stmt map) init,
             Option.map (rename_expr map) cond,
             Option.map (rename_stmt map) step,
             List.map (rename_stmt map) b)
  | Ast.Return e -> Ast.Return (rename_expr map e)

let rec has_call (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Var _ -> false
  | Ast.Index (_, i) -> has_call i
  | Ast.Binop (_, a, b) -> has_call a || has_call b
  | Ast.Unop (_, a) -> has_call a
  | Ast.Call _ -> true

(* Expand calls inside an expression: returns (prelude, pure expr). *)
let rec expand_expr st (e : Ast.expr) : Ast.stmt list * Ast.expr =
  match e with
  | Ast.Int _ | Ast.Var _ -> ([], e)
  | Ast.Index (a, i) ->
    let p, i' = expand_expr st i in
    (p, Ast.Index (a, i'))
  | Ast.Binop (op, x, y) ->
    let px, x' = expand_expr st x in
    let py, y' = expand_expr st y in
    (px @ py, Ast.Binop (op, x', y'))
  | Ast.Unop (op, x) ->
    let p, x' = expand_expr st x in
    (p, Ast.Unop (op, x'))
  | Ast.Call (f, args) ->
    let params, body, ret =
      match Hashtbl.find_opt st.expanded f with
      | Some entry -> entry
      | None -> invalid_arg ("Inline.expand: unknown function " ^ f)
    in
    (* Left-to-right argument evaluation into fresh temporaries. *)
    let arg_parts = List.map (expand_expr st) args in
    let temps = List.map (fun _ -> fresh st "a") params in
    let arg_stmts =
      List.concat
        (List.map2
           (fun (p, e') t -> p @ [ Ast.Assign (t, None, e') ])
           arg_parts temps)
    in
    let map = List.combine params temps in
    let inlined_body = List.map (rename_stmt map) body in
    let res = fresh st "r" in
    let result_stmt = Ast.Assign (res, None, rename_expr map ret) in
    (arg_stmts @ inlined_body @ [ result_stmt ], Ast.Var res)

and expand_stmt st (s : Ast.stmt) : Ast.stmt list =
  match s with
  | Ast.Assign (v, idx, rhs) ->
    let pi, idx' =
      match idx with
      | None -> ([], None)
      | Some i ->
        let p, i' = expand_expr st i in
        (p, Some i')
    in
    let pr, rhs' = expand_expr st rhs in
    pi @ pr @ [ Ast.Assign (v, idx', rhs') ]
  | Ast.If (c, t, e) ->
    let p, c' = expand_expr st c in
    p @ [ Ast.If (c', expand_stmts st t, expand_stmts st e) ]
  | Ast.While (c, b) ->
    if has_call c then begin
      (* t = c; while (t) { body; t = c; } — the condition's call
         prelude re-evaluates every iteration. *)
      let p, c' = expand_expr st c in
      let t = fresh st "c" in
      let body' = expand_stmts st b in
      p
      @ [ Ast.Assign (t, None, c');
          Ast.While (Ast.Var t, body' @ p @ [ Ast.Assign (t, None, c') ]) ]
    end
    else [ Ast.While (c, expand_stmts st b) ]
  | Ast.For (init, cond, step, b) ->
    let any_call =
      (match init with Some s -> stmt_has_call s | None -> false)
      || (match cond with Some c -> has_call c | None -> false)
      || (match step with Some s -> stmt_has_call s | None -> false)
    in
    if any_call then begin
      (* Desugar to while (the lowering does the same), letting the
         while case handle per-iteration call preludes. *)
      let init_stmts =
        match init with Some s -> expand_stmt st s | None -> []
      in
      let cond = Option.value ~default:(Ast.Int 1) cond in
      init_stmts @ expand_stmt st (Ast.While (cond, b @ stmts_of step))
    end
    else [ Ast.For (init, cond, step, expand_stmts st b) ]
  | Ast.Return e ->
    (* Only reached while expanding a function body; preserved for the
       caller to consume. *)
    let p, e' = expand_expr st e in
    p @ [ Ast.Return e' ]

and stmts_of = function Some s -> [ s ] | None -> []

and stmt_has_call (s : Ast.stmt) =
  match s with
  | Ast.Assign (_, idx, rhs) ->
    (match idx with Some i -> has_call i | None -> false) || has_call rhs
  | Ast.If (c, t, e) ->
    has_call c || List.exists stmt_has_call t || List.exists stmt_has_call e
  | Ast.While (c, b) -> has_call c || List.exists stmt_has_call b
  | Ast.For (i, c, st', b) ->
    (match i with Some s -> stmt_has_call s | None -> false)
    || (match c with Some c -> has_call c | None -> false)
    || (match st' with Some s -> stmt_has_call s | None -> false)
    || List.exists stmt_has_call b
  | Ast.Return e -> has_call e

and expand_stmts st stmts = List.concat_map (expand_stmt st) stmts

let expand (p : Ast.program) =
  let st = { counter = 0; new_decls = []; expanded = Hashtbl.create 8 } in
  List.iter
    (fun (f : Ast.func) ->
      (* Bodies expand in definition order, so callees are call-free. *)
      let expanded_body = expand_stmts st f.f_body in
      let rec split acc = function
        | [ Ast.Return e ] -> (List.rev acc, e)
        | s :: rest -> split (s :: acc) rest
        | [] -> invalid_arg "Inline.expand: function without return"
      in
      let body, ret = split [] expanded_body in
      Hashtbl.replace st.expanded f.f_name (f.f_params, body, ret))
    p.funcs;
  let body = expand_stmts st p.body in
  let new_decls =
    List.rev_map
      (fun name -> { Ast.d_name = name; d_size = None })
      st.new_decls
  in
  { Ast.decls = p.decls @ new_decls; funcs = []; body }
