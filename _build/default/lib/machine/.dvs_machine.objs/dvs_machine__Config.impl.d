lib/machine/config.ml: Dvs_power Format
