lib/machine/cpu.mli: Cache Config Dvs_ir
