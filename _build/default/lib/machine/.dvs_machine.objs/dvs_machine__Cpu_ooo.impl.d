lib/machine/cpu_ooo.ml: Array Cfg Config Cpu Dvs_ir Dvs_power Float Hierarchy Instr Int Printf
