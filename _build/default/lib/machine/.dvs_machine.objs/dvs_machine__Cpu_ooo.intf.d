lib/machine/cpu_ooo.mli: Config Cpu Dvs_ir
