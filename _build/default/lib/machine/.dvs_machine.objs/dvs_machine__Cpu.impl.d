lib/machine/cpu.ml: Array Cache Cfg Config Dvs_ir Dvs_power Float Hierarchy Instr Int Printf
