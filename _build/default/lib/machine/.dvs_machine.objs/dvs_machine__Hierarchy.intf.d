lib/machine/hierarchy.mli: Cache Config
