lib/machine/hierarchy.ml: Cache Config
