lib/machine/config.mli: Dvs_power Format
