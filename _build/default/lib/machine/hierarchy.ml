type t = {
  l1 : Cache.t;
  l2 : Cache.t;
  l1_latency : int;
  l2_latency : int;
  word_bytes : int;
}

type outcome = { cycles : int; dram : bool }

let create (cfg : Config.t) =
  { l1 = Cache.create cfg.l1d; l2 = Cache.create cfg.l2;
    l1_latency = cfg.l1d.latency_cycles; l2_latency = cfg.l2.latency_cycles;
    word_bytes = cfg.word_bytes }

let access t ~word_addr =
  let byte_addr = word_addr * t.word_bytes in
  if Cache.access t.l1 byte_addr then { cycles = t.l1_latency; dram = false }
  else if Cache.access t.l2 byte_addr then
    { cycles = t.l1_latency + t.l2_latency; dram = false }
  else { cycles = t.l1_latency + t.l2_latency; dram = true }

let reset t =
  Cache.reset t.l1;
  Cache.reset t.l2

let l1_stats t = Cache.stats t.l1

let l2_stats t = Cache.stats t.l2
