(** Machine configuration — the stand-in for the paper's Table 2
    Wattch/SimpleScalar setup.

    The model keeps exactly the properties the paper's analysis depends
    on:
    - cache hits are {e synchronous}: their latency is in clock cycles and
      scales with the DVS frequency;
    - DRAM is {e asynchronous}: a miss costs wall-clock time independent
      of the clock ([dram_latency]);
    - active energy per cycle is proportional to [V^2]
      ([active_energy_coeff] is the effective switched capacitance);
    - idle (memory-stall) cycles are clock-gated and free;
    - mode transitions cost the regulator model's time and energy. *)

type cache_geometry = {
  size_bytes : int;
  assoc : int;
  block_bytes : int;
  latency_cycles : int;  (** added on a hit in this level *)
}

type t = {
  l1d : cache_geometry;
  l2 : cache_geometry;
  dram_latency : float;  (** seconds, frequency-invariant *)
  word_bytes : int;
  mode_table : Dvs_power.Mode.table;
  regulator : Dvs_power.Switch_cost.regulator;
  active_energy_coeff : float;  (** joules per cycle per volt^2 *)
}

val table2_l1d : cache_geometry
(** 64 KB, 4-way LRU, 32 B blocks, 1 cycle (the paper's L1). *)

val table2_l2 : cache_geometry
(** 512 KB, 4-way LRU, 32 B blocks, 16 cycles. *)

val default :
  ?l1d:cache_geometry -> ?l2:cache_geometry -> ?dram_latency:float ->
  ?mode_table:Dvs_power.Mode.table ->
  ?regulator:Dvs_power.Switch_cost.regulator ->
  ?active_energy_coeff:float -> unit -> t
(** Paper-flavored defaults: Table 2 caches, 120 ns DRAM, the XScale-like
    3-mode table, a 10 uF regulator, and 0.5 nF effective capacitance
    (about 1 W at 800 MHz / 1.65 V, XScale-class). *)

val pp : Format.formatter -> t -> unit
