(** Two-level data-cache hierarchy over asynchronous DRAM. *)

type t

type outcome = {
  cycles : int;
      (** synchronous cost in clock cycles (lookup + hit latencies) *)
  dram : bool;  (** true when the access goes to memory *)
}

val create : Config.t -> t

val access : t -> word_addr:int -> outcome
(** L1 hit: L1 latency.  L1 miss, L2 hit: L1 + L2 latencies.  Both miss:
    the same synchronous lookup cycles plus a DRAM transaction whose
    wall-clock latency ([Config.dram_latency]) the CPU model accounts for
    asynchronously. *)

val reset : t -> unit

val l1_stats : t -> Cache.stats

val l2_stats : t -> Cache.stats
