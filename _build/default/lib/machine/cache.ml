type stats = { accesses : int; hits : int; misses : int }

type t = {
  sets : int;
  assoc : int;
  block_shift : int;
  tags : int array;  (* sets * assoc; -1 = invalid *)
  ages : int array;  (* LRU counters, lower = more recent *)
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (g : Config.cache_geometry) =
  if g.size_bytes <= 0 || g.assoc <= 0 || g.block_bytes <= 0 then
    invalid_arg "Cache.create: non-positive geometry";
  if not (is_power_of_two g.block_bytes) then
    invalid_arg "Cache.create: block size must be a power of two";
  let blocks = g.size_bytes / g.block_bytes in
  if blocks mod g.assoc <> 0 then
    invalid_arg "Cache.create: blocks not divisible by associativity";
  let sets = blocks / g.assoc in
  if not (is_power_of_two sets) then
    invalid_arg "Cache.create: set count must be a power of two";
  { sets; assoc = g.assoc; block_shift = log2 g.block_bytes;
    tags = Array.make (sets * g.assoc) (-1);
    ages = Array.make (sets * g.assoc) 0; clock = 0; accesses = 0; hits = 0 }

let reset c =
  Array.fill c.tags 0 (Array.length c.tags) (-1);
  Array.fill c.ages 0 (Array.length c.ages) 0;
  c.clock <- 0;
  c.accesses <- 0;
  c.hits <- 0

let access c byte_addr =
  let block = byte_addr asr c.block_shift in
  let set = block land (c.sets - 1) in
  let tag = block / c.sets in
  let base = set * c.assoc in
  c.accesses <- c.accesses + 1;
  c.clock <- c.clock + 1;
  let hit_way = ref (-1) in
  for w = 0 to c.assoc - 1 do
    if c.tags.(base + w) = tag then hit_way := w
  done;
  if !hit_way >= 0 then begin
    c.ages.(base + !hit_way) <- c.clock;
    c.hits <- c.hits + 1;
    true
  end
  else begin
    (* Evict the least recently used way (invalid ways have age 0 and are
       picked first). *)
    let victim = ref 0 in
    for w = 1 to c.assoc - 1 do
      if c.ages.(base + w) < c.ages.(base + !victim) then victim := w
    done;
    c.tags.(base + !victim) <- tag;
    c.ages.(base + !victim) <- c.clock;
    false
  end

let stats c = { accesses = c.accesses; hits = c.hits; misses = c.accesses - c.hits }

let num_sets c = c.sets
