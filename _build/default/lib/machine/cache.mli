(** Set-associative cache with true-LRU replacement.

    Tracks tags only (data lives in the flat simulated memory); writes are
    modeled as write-allocate with no write-back cost (a simplification
    documented in DESIGN.md — the paper's analysis does not depend on
    write-back traffic). *)

type t

type stats = { accesses : int; hits : int; misses : int }

val create : Config.cache_geometry -> t
(** Raises [Invalid_argument] unless sizes are positive, the block count
    is divisible by the associativity, and sets are a power of two. *)

val access : t -> int -> bool
(** [access c byte_addr] returns whether the access hits, then updates
    LRU state and allocates the block on a miss. *)

val reset : t -> unit
(** Invalidate everything and clear statistics. *)

val stats : t -> stats

val num_sets : t -> int
