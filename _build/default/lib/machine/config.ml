type cache_geometry = {
  size_bytes : int;
  assoc : int;
  block_bytes : int;
  latency_cycles : int;
}

type t = {
  l1d : cache_geometry;
  l2 : cache_geometry;
  dram_latency : float;
  word_bytes : int;
  mode_table : Dvs_power.Mode.table;
  regulator : Dvs_power.Switch_cost.regulator;
  active_energy_coeff : float;
}

let table2_l1d =
  { size_bytes = 64 * 1024; assoc = 4; block_bytes = 32; latency_cycles = 1 }

let table2_l2 =
  { size_bytes = 512 * 1024; assoc = 4; block_bytes = 32; latency_cycles = 16 }

let default ?(l1d = table2_l1d) ?(l2 = table2_l2) ?(dram_latency = 120e-9)
    ?(mode_table = Dvs_power.Mode.xscale3)
    ?(regulator = Dvs_power.Switch_cost.default)
    ?(active_energy_coeff = 0.5e-9) () =
  { l1d; l2; dram_latency; word_bytes = 4; mode_table; regulator;
    active_energy_coeff }

let pp_geometry ppf g =
  Format.fprintf ppf "%dKB %d-way %dB blocks, %d-cycle"
    (g.size_bytes / 1024) g.assoc g.block_bytes g.latency_cycles

let pp ppf c =
  Format.fprintf ppf
    "@[<v>L1D: %a@,L2: %a@,DRAM: %.0fns@,modes: %a@,%a@,Ceff: %.2gnF@]"
    pp_geometry c.l1d pp_geometry c.l2
    (c.dram_latency *. 1e9)
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Dvs_power.Mode.pp)
    (Dvs_power.Mode.to_list c.mode_table)
    Dvs_power.Switch_cost.pp c.regulator
    (c.active_energy_coeff *. 1e9)
