type t = float array

let create n = Array.make n 0.0

let init = Array.init

let copy = Array.copy

let dim = Array.length

let check_dims name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length x) (Array.length y))

let dot x y =
  check_dims "dot" x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let scale a x = Array.map (fun v -> a *. v) x

let axpy_inplace a x y =
  check_dims "axpy_inplace" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let add x y =
  check_dims "add" x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_dims "sub" x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let norm_inf x = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0.0 x

let norm2 x = sqrt (dot x x)

let extreme_index better x =
  if Array.length x = 0 then invalid_arg "Vec.extreme_index: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if better x.(i) x.(!best) then best := i
  done;
  !best

let max_index x = extreme_index (fun a b -> a > b) x

let min_index x = extreme_index (fun a b -> a < b) x

let linspace a b n =
  if n < 2 then invalid_arg "Vec.linspace: need n >= 2";
  let step = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (float_of_int i *. step))

let pp ppf x =
  Format.fprintf ppf "@[<hov 1>[%a]@]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf v -> Format.fprintf ppf "%g" v))
    x
