type t = { m : int; n : int; data : float array }

let create m n =
  if m < 0 || n < 0 then invalid_arg "Matrix.create: negative dimension";
  { m; n; data = Array.make (m * n) 0.0 }

let init m n f =
  let a = create m n in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      a.data.((i * n) + j) <- f i j
    done
  done;
  a

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let rows a = a.m

let cols a = a.n

let check_index a i j =
  if i < 0 || i >= a.m || j < 0 || j >= a.n then
    invalid_arg
      (Printf.sprintf "Matrix: index (%d,%d) out of bounds %dx%d" i j a.m a.n)

let get a i j =
  check_index a i j;
  a.data.((i * a.n) + j)

let set a i j v =
  check_index a i j;
  a.data.((i * a.n) + j) <- v

let copy a = { a with data = Array.copy a.data }

let row a i =
  check_index a i 0;
  Array.sub a.data (i * a.n) a.n

let col a j =
  check_index a 0 j;
  Array.init a.m (fun i -> a.data.((i * a.n) + j))

let set_row a i (v : Vec.t) =
  check_index a i 0;
  if Array.length v <> a.n then invalid_arg "Matrix.set_row: dimension mismatch";
  Array.blit v 0 a.data (i * a.n) a.n

let mul_vec a (x : Vec.t) =
  if Array.length x <> a.n then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init a.m (fun i ->
      let acc = ref 0.0 in
      let base = i * a.n in
      for j = 0 to a.n - 1 do
        acc := !acc +. (a.data.(base + j) *. x.(j))
      done;
      !acc)

let transpose_mul_vec a (y : Vec.t) =
  if Array.length y <> a.m then
    invalid_arg "Matrix.transpose_mul_vec: dimension mismatch";
  let r = Array.make a.n 0.0 in
  for i = 0 to a.m - 1 do
    let base = i * a.n in
    for j = 0 to a.n - 1 do
      r.(j) <- r.(j) +. (a.data.(base + j) *. y.(i))
    done
  done;
  r

let mul a b =
  if a.n <> b.m then invalid_arg "Matrix.mul: dimension mismatch";
  init a.m b.n (fun i j ->
      let acc = ref 0.0 in
      for k = 0 to a.n - 1 do
        acc := !acc +. (a.data.((i * a.n) + k) *. b.data.((k * b.n) + j))
      done;
      !acc)

let swap_rows a i j =
  check_index a i 0;
  check_index a j 0;
  if i <> j then
    for k = 0 to a.n - 1 do
      let t = a.data.((i * a.n) + k) in
      a.data.((i * a.n) + k) <- a.data.((j * a.n) + k);
      a.data.((j * a.n) + k) <- t
    done

let scale_row_inplace a i c =
  check_index a i 0;
  let base = i * a.n in
  for k = 0 to a.n - 1 do
    a.data.(base + k) <- c *. a.data.(base + k)
  done

let add_scaled_row_inplace a ~src ~dst c =
  check_index a src 0;
  check_index a dst 0;
  let bs = src * a.n and bd = dst * a.n in
  for k = 0 to a.n - 1 do
    a.data.(bd + k) <- a.data.(bd + k) +. (c *. a.data.(bs + k))
  done

let solve a0 (b0 : Vec.t) =
  if a0.m <> a0.n then invalid_arg "Matrix.solve: matrix must be square";
  if Array.length b0 <> a0.m then invalid_arg "Matrix.solve: rhs mismatch";
  let n = a0.n in
  let a = copy a0 and b = Array.copy b0 in
  let singular = ref false in
  (* Forward elimination with partial pivoting. *)
  let k = ref 0 in
  while (not !singular) && !k < n do
    let piv = ref !k in
    for i = !k + 1 to n - 1 do
      if Float.abs (get a i !k) > Float.abs (get a !piv !k) then piv := i
    done;
    if Float.abs (get a !piv !k) < 1e-12 then singular := true
    else begin
      swap_rows a !k !piv;
      let t = b.(!k) in
      b.(!k) <- b.(!piv);
      b.(!piv) <- t;
      for i = !k + 1 to n - 1 do
        let factor = -.get a i !k /. get a !k !k in
        add_scaled_row_inplace a ~src:!k ~dst:i factor;
        b.(i) <- b.(i) +. (factor *. b.(!k))
      done;
      incr k
    end
  done;
  if !singular then None
  else begin
    (* Back substitution. *)
    let x = Array.make n 0.0 in
    for i = n - 1 downto 0 do
      let acc = ref b.(i) in
      for j = i + 1 to n - 1 do
        acc := !acc -. (get a i j *. x.(j))
      done;
      x.(i) <- !acc /. get a i i
    done;
    Some x
  end

let pp ppf a =
  Format.fprintf ppf "@[<v>";
  for i = 0 to a.m - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    Format.fprintf ppf "%a" Vec.pp (row a i)
  done;
  Format.fprintf ppf "@]"
