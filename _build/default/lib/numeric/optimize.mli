(** One-dimensional optimization and root finding.

    The analytical DVS model reduces every case to minimizing a univariate
    (piecewise-)smooth energy function over a voltage or time interval, and
    to inverting the monotone alpha-power frequency law.  These routines are
    deliberately derivative-free and robust rather than fast.

    In every function the objective is the final positional argument. *)

val golden_section :
  ?tol:float -> lo:float -> hi:float -> (float -> float) -> float * float
(** [golden_section ~lo ~hi f] minimizes a unimodal [f] on [[lo, hi]];
    returns the pair [(xmin, f xmin)].  [tol] is the absolute interval
    tolerance (default [1e-9] times the interval width, floored at
    [1e-12]). *)

val grid_minimize :
  ?refine:int -> n:int -> lo:float -> hi:float -> (float -> float) ->
  float * float
(** [grid_minimize ~n ~lo ~hi f] samples [f] at [n] evenly spaced points and
    then runs [refine] (default 2) golden-section passes around the best
    sample.  Robust for multimodal staircase-like objectives such as the
    discrete-voltage [Emin(y)] curve. *)

val bisect :
  ?tol:float -> ?max_iter:int -> lo:float -> hi:float -> (float -> float) ->
  float option
(** [bisect ~lo ~hi f] finds a root of [f] on [[lo, hi]] by bisection.
    Returns [None] when [f lo] and [f hi] have the same strict sign. *)

val invert_increasing :
  ?tol:float -> lo:float -> hi:float -> (float -> float) -> float -> float
(** [invert_increasing ~lo ~hi f y] returns [x] in [[lo, hi]] with
    [f x = y] for a nondecreasing [f], clamping to the interval ends when
    [y] lies outside [[f lo, f hi]]. *)
