(** Dense row-major float matrices.

    Used by the simplex tableau and for small linear solves in the
    analytical model.  Rows and columns are 0-indexed. *)

type t

val create : int -> int -> t
(** [create m n] is the [m] x [n] zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val copy : t -> t

val row : t -> int -> Vec.t
(** [row a i] is a fresh copy of row [i]. *)

val col : t -> int -> Vec.t

val set_row : t -> int -> Vec.t -> unit

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec a x] is [a x]. *)

val transpose_mul_vec : t -> Vec.t -> Vec.t
(** [transpose_mul_vec a y] is [aᵀ y]. *)

val mul : t -> t -> t

val swap_rows : t -> int -> int -> unit

val scale_row_inplace : t -> int -> float -> unit

val add_scaled_row_inplace : t -> src:int -> dst:int -> float -> unit
(** [add_scaled_row_inplace a ~src ~dst c] performs
    [row dst <- row dst + c * row src]. *)

val solve : t -> Vec.t -> Vec.t option
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting; [None] if [a] is (numerically) singular.  [a] and [b] are not
    modified. *)

val pp : Format.formatter -> t -> unit
