let inv_phi = (sqrt 5.0 -. 1.0) /. 2.0

let golden_section ?tol ~lo ~hi f =
  if not (lo <= hi) then invalid_arg "Optimize.golden_section: lo > hi";
  let tol =
    match tol with
    | Some t -> t
    | None -> Float.max 1e-12 (1e-9 *. (hi -. lo))
  in
  let a = ref lo and b = ref hi in
  let c = ref (!b -. (inv_phi *. (!b -. !a))) in
  let d = ref (!a +. (inv_phi *. (!b -. !a))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  while !b -. !a > tol do
    if !fc <= !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (inv_phi *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (inv_phi *. (!b -. !a));
      fd := f !d
    end
  done;
  let x = (!a +. !b) /. 2.0 in
  (x, f x)

let grid_minimize ?(refine = 2) ~n ~lo ~hi f =
  if n < 2 then invalid_arg "Optimize.grid_minimize: need n >= 2";
  if not (lo <= hi) then invalid_arg "Optimize.grid_minimize: lo > hi";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  let best_x = ref lo and best_f = ref (f lo) in
  for i = 1 to n - 1 do
    let x = lo +. (float_of_int i *. step) in
    let fx = f x in
    if fx < !best_f then begin
      best_f := fx;
      best_x := x
    end
  done;
  (* Refine around the best sample: the function is locally unimodal there
     for the staircase objectives we care about. *)
  let x = ref !best_x and fx = ref !best_f in
  for _ = 1 to refine do
    let a = Float.max lo (!x -. step) and b = Float.min hi (!x +. step) in
    let x', fx' = golden_section ~lo:a ~hi:b f in
    if fx' < !fx then begin
      x := x';
      fx := fx'
    end
  done;
  (!x, !fx)

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~lo ~hi f =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then Some lo
  else if fhi = 0.0 then Some hi
  else if flo *. fhi > 0.0 then None
  else begin
    let a = ref lo and b = ref hi and fa = ref flo in
    let iter = ref 0 in
    while !b -. !a > tol && !iter < max_iter do
      let m = (!a +. !b) /. 2.0 in
      let fm = f m in
      if fm = 0.0 then begin
        a := m;
        b := m
      end
      else if !fa *. fm < 0.0 then b := m
      else begin
        a := m;
        fa := fm
      end;
      incr iter
    done;
    Some ((!a +. !b) /. 2.0)
  end

let invert_increasing ?(tol = 1e-12) ~lo ~hi f y =
  if y <= f lo then lo
  else if y >= f hi then hi
  else
    match bisect ~tol ~lo ~hi (fun x -> f x -. y) with
    | Some x -> x
    | None -> (* cannot happen for a nondecreasing f given the guards *) lo
