(** Dense float vectors.

    Thin helpers over [float array] used by the simplex solver and the
    analytical sweeps.  All operations are eager and allocate fresh arrays
    unless the name says otherwise ([*_inplace]). *)

type t = float array

val create : int -> t
(** [create n] is the zero vector of dimension [n]. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val dim : t -> int

val dot : t -> t -> float
(** [dot x y] is the inner product.  Raises [Invalid_argument] on dimension
    mismatch. *)

val scale : float -> t -> t

val axpy_inplace : float -> t -> t -> unit
(** [axpy_inplace a x y] performs [y <- a*x + y]. *)

val add : t -> t -> t

val sub : t -> t -> t

val norm_inf : t -> float

val norm2 : t -> float

val max_index : t -> int
(** Index of the maximum entry (first one on ties). Raises on empty. *)

val min_index : t -> int

val linspace : float -> float -> int -> t
(** [linspace a b n] is [n] evenly spaced points from [a] to [b]
    inclusive; [n >= 2]. *)

val pp : Format.formatter -> t -> unit
