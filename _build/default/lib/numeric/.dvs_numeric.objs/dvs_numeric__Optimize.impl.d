lib/numeric/optimize.ml: Float
