lib/numeric/optimize.mli:
