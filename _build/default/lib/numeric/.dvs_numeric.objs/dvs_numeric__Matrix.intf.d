lib/numeric/matrix.mli: Format Vec
