(** Immutable linear expressions over integer-indexed variables:
    [sum_i c_i x_i + const].  The building blocks of LP/MILP models. *)

type t

val zero : t

val constant : float -> t

val term : float -> int -> t
(** [term c i] is the single-term expression [c * x_i]. *)

val var : int -> t
(** [var i] is [term 1.0 i]. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val add_term : t -> float -> int -> t
(** [add_term e c i] is [e + c * x_i]. *)

val of_terms : ?const:float -> (float * int) list -> t
(** [of_terms [(c0, i0); ...]] sums the terms; repeated indices
    accumulate. *)

val const : t -> float

val coeff : t -> int -> float
(** 0 for absent variables. *)

val coeffs : t -> (int * float) list
(** Nonzero terms in increasing variable order. *)

val eval : (int -> float) -> t -> float

val max_var : t -> int
(** Largest variable index mentioned; [-1] for constants. *)

val pp : Format.formatter -> t -> unit
