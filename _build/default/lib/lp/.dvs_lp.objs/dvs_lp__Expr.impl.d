lib/lp/expr.ml: Format Int List Map
