lib/lp/lp_io.ml: Buffer Expr Float List Model Printf String
