lib/lp/simplex.mli: Format Model
