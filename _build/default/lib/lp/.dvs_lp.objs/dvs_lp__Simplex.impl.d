lib/lp/simplex.ml: Array Expr Float Format Hashtbl List Model
