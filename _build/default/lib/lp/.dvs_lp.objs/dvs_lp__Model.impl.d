lib/lp/model.ml: Array Expr Float Format Int List Printf
