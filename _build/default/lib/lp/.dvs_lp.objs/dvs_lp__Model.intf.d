lib/lp/model.mli: Expr Format
