(** CPLEX-LP-format export of models.

    The paper's toolchain went through AMPL into CPLEX; this writer lets
    any model built here be fed to an external solver for cross-checking
    (and makes solver bug reports self-contained). *)

val to_lp_string : Model.t -> string
(** The model in LP file format: objective, constraints, bounds, and a
    [General]/[Binary] integrality section. *)

val write_file : Model.t -> string -> unit
