(** Dense two-phase primal simplex.

    Handles general bounds (finite lower bounds are shifted away, finite
    upper bounds become rows, free variables are split), row equilibration
    for numeric robustness, Dantzig pricing with a Bland's-rule fallback
    for anti-cycling.  Integrality markers on variables are ignored — this
    solves the relaxation; {!Dvs_milp} adds branch and bound on top.

    Sized for the paper's instances (hundreds of rows/columns), not for
    industrial LPs. *)

type solution = {
  objective : float;
  values : float array;  (** indexed by {!Model.var} *)
}

type status = Optimal of solution | Infeasible | Unbounded

val solve : ?max_iter:int -> ?eps:float -> Model.t -> status
(** [eps] is the master tolerance (default [1e-7]): reduced-cost threshold
    and (scaled) feasibility threshold.  [max_iter] bounds pivots per phase
    (default 100000); Bland's rule engages after [2 * (rows + cols)] pivots,
    so termination failure raises [Failure] rather than silently looping. *)

val pp_status : Format.formatter -> status -> unit
