let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> c
      | _ -> '_')
    name

let append_term buf first coeff name =
  if coeff <> 0.0 then begin
    if coeff >= 0.0 && not first then Buffer.add_string buf " + "
    else if coeff < 0.0 then Buffer.add_string buf (if first then "- " else " - ");
    let a = Float.abs coeff in
    if a = 1.0 then Buffer.add_string buf name
    else Buffer.add_string buf (Printf.sprintf "%.12g %s" a name)
  end

let append_expr buf m e =
  let terms = Expr.coeffs e in
  if terms = [] then Buffer.add_string buf "0 x0_unused"
  else
    List.iteri
      (fun i (v, c) ->
        append_term buf (i = 0) c (sanitize (Model.name m v)))
      terms

let to_lp_string m =
  let buf = Buffer.create 1024 in
  let sense, obj = Model.objective m in
  Buffer.add_string buf
    (match sense with
    | Model.Minimize -> "Minimize\n obj: "
    | Model.Maximize -> "Maximize\n obj: ");
  append_expr buf m obj;
  Buffer.add_string buf "\nSubject To\n";
  List.iter
    (fun (c : Model.constr) ->
      Buffer.add_string buf (Printf.sprintf " %s: " (sanitize c.c_name));
      append_expr buf m c.expr;
      Buffer.add_string buf
        (match c.cmp with
        | Model.Le -> " <= "
        | Model.Ge -> " >= "
        | Model.Eq -> " = ");
      Buffer.add_string buf (Printf.sprintf "%.12g\n" c.rhs))
    (Model.constraints m);
  Buffer.add_string buf "Bounds\n";
  for v = 0 to Model.num_vars m - 1 do
    let lb, ub = Model.bounds m v in
    let name = sanitize (Model.name m v) in
    let fmt_bound b =
      if b = infinity then "+inf"
      else if b = neg_infinity then "-inf"
      else Printf.sprintf "%.12g" b
    in
    if not (lb = 0.0 && ub = infinity) then
      Buffer.add_string buf
        (Printf.sprintf " %s <= %s <= %s\n" (fmt_bound lb) name (fmt_bound ub))
  done;
  let ints = Model.integer_vars m in
  let binaries, generals =
    List.partition (fun v -> Model.bounds m v = (0.0, 1.0)) ints
  in
  if binaries <> [] then begin
    Buffer.add_string buf "Binary\n";
    List.iter
      (fun v ->
        Buffer.add_string buf
          (Printf.sprintf " %s\n" (sanitize (Model.name m v))))
      binaries
  end;
  if generals <> [] then begin
    Buffer.add_string buf "General\n";
    List.iter
      (fun v ->
        Buffer.add_string buf
          (Printf.sprintf " %s\n" (sanitize (Model.name m v))))
      generals
  end;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

let write_file m path =
  let oc = open_out path in
  output_string oc (to_lp_string m);
  close_out oc
