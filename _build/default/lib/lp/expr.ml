module Int_map = Map.Make (Int)

type t = { terms : float Int_map.t; const : float }

let zero = { terms = Int_map.empty; const = 0.0 }

let constant c = { terms = Int_map.empty; const = c }

let put i c terms =
  if c = 0.0 then Int_map.remove i terms else Int_map.add i c terms

let term c i =
  if i < 0 then invalid_arg "Expr.term: negative variable index";
  { terms = put i c Int_map.empty; const = 0.0 }

let var i = term 1.0 i

let add a b =
  { terms =
      Int_map.union (fun _ ca cb ->
          let c = ca +. cb in
          if c = 0.0 then None else Some c)
        a.terms b.terms;
    const = a.const +. b.const }

let scale k e =
  if k = 0.0 then zero
  else { terms = Int_map.map (fun c -> k *. c) e.terms; const = k *. e.const }

let sub a b = add a (scale (-1.0) b)

let add_term e c i =
  if i < 0 then invalid_arg "Expr.add_term: negative variable index";
  let c' = (try Int_map.find i e.terms with Not_found -> 0.0) +. c in
  { e with terms = put i c' e.terms }

let of_terms ?(const = 0.0) terms =
  List.fold_left (fun e (c, i) -> add_term e c i) (constant const) terms

let const e = e.const

let coeff e i = try Int_map.find i e.terms with Not_found -> 0.0

let coeffs e = Int_map.bindings e.terms

let eval value e =
  Int_map.fold (fun i c acc -> acc +. (c *. value i)) e.terms e.const

let max_var e =
  match Int_map.max_binding_opt e.terms with
  | Some (i, _) -> i
  | None -> -1

let pp ppf e =
  let first = ref true in
  Int_map.iter
    (fun i c ->
      if !first then begin
        Format.fprintf ppf "%g*x%d" c i;
        first := false
      end
      else if c >= 0.0 then Format.fprintf ppf " + %g*x%d" c i
      else Format.fprintf ppf " - %g*x%d" (-.c) i)
    e.terms;
  if e.const <> 0.0 || !first then
    if !first then Format.fprintf ppf "%g" e.const
    else if e.const >= 0.0 then Format.fprintf ppf " + %g" e.const
    else Format.fprintf ppf " - %g" (-.e.const)
