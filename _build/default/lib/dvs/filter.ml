open Dvs_ir

let representatives ?(threshold = 0.02) ?weights profiles =
  (match profiles with
  | [] -> invalid_arg "Filter.representatives: no profiles"
  | _ -> ());
  let p0 = List.hd profiles in
  let cfg = p0.Dvs_profile.Profile.cfg in
  let edges = Cfg.edges cfg in
  let n = Array.length edges in
  let weights =
    match weights with
    | Some ws ->
      if List.length ws <> List.length profiles then
        invalid_arg "Filter.representatives: weight count mismatch";
      ws
    | None ->
      let k = List.length profiles in
      List.init k (fun _ -> 1.0 /. float_of_int k)
  in
  (* Weighted destination energy per edge, at the fastest mode. *)
  let energy_of = Array.make n 0.0 in
  List.iter2
    (fun (p : Dvs_profile.Profile.t) w ->
      let mode = Array.length p.runs - 1 in
      Array.iteri
        (fun idx count ->
          let j = edges.(idx).Cfg.dst in
          energy_of.(idx) <-
            energy_of.(idx)
            +. (w *. float_of_int count
                *. Dvs_profile.Profile.block_energy p ~mode j))
        p.edge_count)
    profiles weights;
  let total = Array.fold_left ( +. ) 0.0 energy_of in
  (* Mark the cheap cumulative tail as filtered. *)
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare energy_of.(a) energy_of.(b)) order;
  let filtered = Array.make n false in
  let acc = ref 0.0 in
  Array.iter
    (fun idx ->
      acc := !acc +. energy_of.(idx);
      if !acc <= threshold *. total then filtered.(idx) <- true)
    order;
  (* Dominant incoming edge of each block (by combined count); the
     virtual entry edge (id = n) can be the dominant predecessor of the
     entry block. *)
  let combined_count = Array.make n 0.0 in
  let entry_count = ref 0.0 in
  List.iter2
    (fun (p : Dvs_profile.Profile.t) w ->
      Array.iteri
        (fun idx c ->
          combined_count.(idx) <-
            combined_count.(idx) +. (w *. float_of_int c))
        p.edge_count;
      entry_count := !entry_count +. (w *. float_of_int p.entry_count))
    profiles weights;
  let dominant_in = Array.make (Cfg.num_blocks cfg) (-1) in
  let best_count = Array.make (Cfg.num_blocks cfg) neg_infinity in
  Array.iteri
    (fun idx (e : Cfg.edge) ->
      if combined_count.(idx) > best_count.(e.dst) then begin
        best_count.(e.dst) <- combined_count.(idx);
        dominant_in.(e.dst) <- idx
      end)
    edges;
  if !entry_count > best_count.(Cfg.entry cfg) then
    dominant_in.(Cfg.entry cfg) <- n (* the virtual edge *);
  (* Tie each filtered edge to the dominant edge entering its source
     block, following chains; break cycles by keeping independent. *)
  let repr = Array.init (n + 1) Fun.id in
  let rec resolve visited idx =
    if not filtered.(idx) then idx
    else if List.mem idx visited then idx (* cycle: stay independent *)
    else begin
      let src = edges.(idx).Cfg.src in
      let target = dominant_in.(src) in
      if target < 0 || target = idx then idx
      else if target = n then n
      else resolve (idx :: visited) target
    end
  in
  for idx = 0 to n - 1 do
    repr.(idx) <- resolve [] idx
  done;
  repr

let independent_count repr =
  let n = Array.length repr in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if repr.(i) = i then incr count
  done;
  !count

let block_based cfg =
  let edges = Cfg.edges cfg in
  let n = Array.length edges in
  let repr = Array.init (n + 1) Fun.id in
  (* First incoming edge of each block represents the rest; the entry
     block's group is led by the virtual entry edge. *)
  let leader = Array.make (Cfg.num_blocks cfg) (-1) in
  leader.(Cfg.entry cfg) <- n;
  Array.iteri
    (fun idx (e : Cfg.edge) ->
      if leader.(e.dst) < 0 then leader.(e.dst) <- idx;
      repr.(idx) <- leader.(e.dst))
    edges;
  repr
