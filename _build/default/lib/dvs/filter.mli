(** Edge filtering (Section 5.2): shrink the MILP by tying the mode of
    low-energy edges to the mode of their block's dominant incoming edge.

    Rule: rank edges by total destination energy [G_ij * E_j] (at a
    reference mode); edges in the cumulative tail below [threshold]
    (default 2%) of the total give up their independent mode variable and
    reuse the variable group of the highest-count edge entering their
    source block.  Ties are followed transitively; cycles (possible
    around loops) break by keeping the edge independent.  Timing terms
    are unaffected — only the variable count drops. *)

val representatives :
  ?threshold:float ->
  ?weights:float list ->
  Dvs_profile.Profile.t list ->
  int array
(** [representatives profiles] returns the edge-id [->] representative
    map expected by {!Formulation.build} (length = real edges + 1; the
    virtual entry edge is always independent).  Multiple profiles are
    combined with [weights] (default: uniform). *)

val independent_count : int array -> int
(** Number of independent edges in a representative map. *)

val block_based : Dvs_ir.Cfg.t -> int array
(** The granularity of prior work (Saputra et al.): one mode per
    {e block} rather than per edge, expressed as a representative map
    that ties all of a block's incoming edges together.  Used by the
    ablation experiment that quantifies what edge-granularity buys. *)
