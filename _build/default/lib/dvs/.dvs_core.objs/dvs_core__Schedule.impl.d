lib/dvs/schedule.ml: Array Buffer Cfg Dvs_ir Format Formulation List Printf String
