lib/dvs/pipeline.mli: Dvs_ir Dvs_machine Dvs_milp Dvs_power Formulation Schedule Verify
