lib/dvs/formulation.mli: Dvs_ir Dvs_lp Dvs_power Dvs_profile
