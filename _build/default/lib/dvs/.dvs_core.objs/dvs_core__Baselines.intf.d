lib/dvs/baselines.mli: Dvs_ir Dvs_machine Dvs_profile Schedule
