lib/dvs/instrument.mli: Dvs_ir Schedule
