lib/dvs/filter.mli: Dvs_ir Dvs_profile
