lib/dvs/instrument.ml: Array Cfg Dvs_ir Hashtbl Instr List Printf Schedule
