lib/dvs/verify.mli: Dvs_ir Dvs_machine Schedule
