lib/dvs/schedule.mli: Dvs_ir Dvs_lp Format Formulation
