lib/dvs/filter.ml: Array Cfg Dvs_ir Dvs_profile Float Fun List
