lib/dvs/verify.ml: Dvs_machine Float Schedule
