lib/dvs/baselines.ml: Array Cfg Dvs_ir Dvs_machine Dvs_power Dvs_profile Float Fun List Schedule
