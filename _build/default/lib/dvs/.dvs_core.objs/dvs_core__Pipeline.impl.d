lib/dvs/pipeline.ml: Array Dvs_lp Dvs_machine Dvs_milp Dvs_power Dvs_profile Filter Formulation List Option Schedule Sys Verify
