lib/dvs/formulation.ml: Array Cfg Dvs_ir Dvs_lp Dvs_machine Dvs_power Dvs_profile Expr Fun Hashtbl List Model Printf Simplex
