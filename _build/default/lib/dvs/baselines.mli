(** Comparison points for the MILP schedules.

    - {!best_single_mode}: the best static (inter-program) setting — the
      denominator of every savings ratio the paper reports;
    - {!hsu_kremer}: a reimplementation of the Hsu-Kremer-style heuristic
      the paper cites as prior art — slow down the most memory-bound
      regions first, greedily, while the deadline still holds. *)

val best_single_mode :
  Dvs_profile.Profile.t -> deadline:float -> (int * float) option
(** [(mode, energy_joules)] of the cheapest pinned mode meeting the
    deadline; [None] when even the fastest misses it. *)

val hsu_kremer :
  ?fuel:int ->
  Dvs_machine.Config.t -> Dvs_ir.Cfg.t -> memory:int array ->
  profile:Dvs_profile.Profile.t -> deadline:float -> Schedule.t option
(** Greedy heuristic: blocks ranked by memory-boundedness (how little
    their profiled time dilates between the fastest and slowest modes);
    most-memory-bound blocks' incoming edges drop to the slowest mode one
    block at a time while re-simulation confirms the deadline.  [None]
    when even the all-fast schedule misses the deadline. *)

val weiser_governor :
  ?up_threshold:float -> ?down_threshold:float -> interval:float -> unit ->
  Dvs_machine.Cpu.governor
(** Weiser-style interval policy (the OS-level related work): every
    [interval] seconds, step the mode up when the core was busy more
    than [up_threshold] (default 0.9) of the window, down when below
    [down_threshold] (default 0.65).  Deadline-unaware — the comparison
    point that motivates compile-time DVS. *)
