open Dvs_ir

let mode_of schedule cfg e = Schedule.edge_modes schedule cfg e

let apply (schedule : Schedule.t) cfg =
  let n = Cfg.num_blocks cfg in
  (* Decide placement per edge. *)
  let uniform_in = Array.make n None in
  (* mode if all in-edges agree *)
  let has_preds = Array.make n false in
  Array.iter
    (fun (e : Cfg.edge) ->
      let m = mode_of schedule cfg e in
      if not has_preds.(e.dst) then begin
        has_preds.(e.dst) <- true;
        uniform_in.(e.dst) <- m
      end
      else if uniform_in.(e.dst) <> m then uniform_in.(e.dst) <- None)
    (Cfg.edges cfg);
  let uniform_out = Array.make n None in
  let has_succs = Array.make n false in
  Array.iter
    (fun (e : Cfg.edge) ->
      let m = mode_of schedule cfg e in
      if not has_succs.(e.src) then begin
        has_succs.(e.src) <- true;
        uniform_out.(e.src) <- m
      end
      else if uniform_out.(e.src) <> m then uniform_out.(e.src) <- None)
    (Cfg.edges cfg);
  (* An edge needs a split block iff neither endpoint absorbs it. *)
  let needs_split (e : Cfg.edge) =
    match mode_of schedule cfg e with
    | None -> None
    | Some m ->
      if has_preds.(e.dst) && uniform_in.(e.dst) = Some m then None
        (* handled at dst head; note all in-edges carry m *)
      else if uniform_out.(e.src) = Some m then None (* handled at src tail *)
      else Some m
  in
  let b = Cfg.Builder.create () in
  (* Recreate original blocks (same labels, bodies filled below). *)
  let blocks = Cfg.blocks cfg in
  Array.iter
    (fun (blk : Cfg.block) ->
      ignore (Cfg.Builder.add_block ~name:blk.name b))
    blocks;
  (* The entry mode-set must execute exactly once.  If the entry block
     can be re-entered (it is a loop target), give the program a fresh
     preamble block instead of planting the mode-set inside it. *)
  let entry_needs_preamble = Cfg.predecessors cfg (Cfg.entry cfg) <> [] in
  let preamble =
    if entry_needs_preamble then begin
      let l = Cfg.Builder.add_block ~name:"modeset.entry" b in
      Cfg.Builder.push b l (Instr.Modeset schedule.Schedule.entry_mode);
      Cfg.Builder.set_term b l (Cfg.Jump (Cfg.entry cfg));
      Some l
    end
    else None
  in
  (* Allocate split blocks. *)
  let split_of = Hashtbl.create 16 in
  Array.iter
    (fun (e : Cfg.edge) ->
      match needs_split e with
      | Some m ->
        let l =
          Cfg.Builder.add_block
            ~name:(Printf.sprintf "modeset.%d.%d" e.src e.dst) b
        in
        Cfg.Builder.push b l (Instr.Modeset m);
        Cfg.Builder.set_term b l (Cfg.Jump e.dst);
        Hashtbl.replace split_of (e.src, e.dst) l
      | None -> ())
    (Cfg.edges cfg);
  let target src dst =
    match Hashtbl.find_opt split_of (src, dst) with
    | Some l -> l
    | None -> dst
  in
  Array.iter
    (fun (blk : Cfg.block) ->
      let l = blk.label in
      (* Entry mode-set, then head mode-set when all in-edges agree. *)
      if l = Cfg.entry cfg && preamble = None then
        Cfg.Builder.push b l (Instr.Modeset schedule.Schedule.entry_mode);
      (match (has_preds.(l), uniform_in.(l)) with
      | true, Some m -> Cfg.Builder.push b l (Instr.Modeset m)
      | _ -> ());
      Array.iter (fun i -> Cfg.Builder.push b l i) blk.body;
      (* Tail mode-set when out-edges agree but the dst heads don't
         absorb them. *)
      (match (has_succs.(l), uniform_out.(l)) with
      | true, Some m ->
        let absorbed_by_dsts =
          List.for_all
            (fun dst -> has_preds.(dst) && uniform_in.(dst) = Some m)
            (Cfg.successors cfg l)
        in
        if not absorbed_by_dsts then
          Cfg.Builder.push b l (Instr.Modeset m)
      | _ -> ());
      let term =
        match blk.term with
        | Cfg.Halt -> Cfg.Halt
        | Cfg.Jump d -> Cfg.Jump (target l d)
        | Cfg.Branch (r, t, f) -> Cfg.Branch (r, target l t, target l f)
      in
      Cfg.Builder.set_term b l term)
    blocks;
  let entry =
    match preamble with Some l -> l | None -> Cfg.entry cfg
  in
  Cfg.Builder.finish b ~entry

(* Forward dataflow: the DVS mode held at each program point.  [None] =
   unknown. *)
let simplify cfg =
  let n = Cfg.num_blocks cfg in
  let in_mode : int option array = Array.make n None in
  let out_mode : int option array = Array.make n None in
  let transfer (blk : Cfg.block) inm =
    Array.fold_left
      (fun m i -> match i with Instr.Modeset x -> Some x | _ -> m)
      inm blk.body
  in
  let meet a b = match (a, b) with
    | Some x, Some y when x = y -> Some x
    | _ -> None
  in
  (* Fixpoint.  [out] starts optimistic at the transfer of Unknown. *)
  let blocks = Cfg.blocks cfg in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (blk : Cfg.block) ->
        let l = blk.label in
        let preds = Cfg.predecessors cfg l in
        let inm =
          if l = Cfg.entry cfg then None
          else
            match preds with
            | [] -> None
            | p :: rest ->
              List.fold_left (fun acc q -> meet acc out_mode.(q))
                out_mode.(p) rest
        in
        let outm = transfer blk inm in
        if inm <> in_mode.(l) || outm <> out_mode.(l) then begin
          in_mode.(l) <- inm;
          out_mode.(l) <- outm;
          changed := true
        end)
      blocks
  done;
  (* Drop every Modeset whose mode already holds. *)
  Cfg.map_blocks
    (fun blk ->
      let mode = ref in_mode.(blk.label) in
      let body =
        Array.to_list blk.body
        |> List.filter (fun i ->
               match i with
               | Instr.Modeset m ->
                 if !mode = Some m then false
                 else begin
                   mode := Some m;
                   true
                 end
               | _ -> true)
      in
      { blk with body = Array.of_list body })
    cfg

let static_modesets cfg =
  Array.fold_left
    (fun acc (blk : Cfg.block) ->
      Array.fold_left
        (fun acc i -> match i with Instr.Modeset _ -> acc + 1 | _ -> acc)
        acc blk.body)
    0 (Cfg.blocks cfg)
