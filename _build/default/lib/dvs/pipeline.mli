(** End-to-end compile-time DVS: profile -> (filter) -> MILP -> schedule
    -> verify.  The driver behind the experiments and the CLI. *)

type options = {
  filter : bool;  (** apply Section 5.2 edge filtering (default true) *)
  filter_threshold : float;  (** default 0.02 *)
  milp : Dvs_milp.Branch_bound.options;
  verify : bool;  (** re-simulate the chosen schedule (default true) *)
}

val default_options : options

type result = {
  categories : Formulation.category list;
  formulation : Formulation.t;
  milp : Dvs_milp.Branch_bound.result;
  predicted_energy : float option;  (** joules (objective / 1e6) *)
  schedule : Schedule.t option;
  verification : Verify.report option;  (** against the first category *)
  solve_seconds : float;  (** CPU time in the MILP solver *)
  independent_edges : int;  (** after filtering, incl. the virtual edge *)
}

val optimize_multi :
  ?options:options ->
  ?verify_config:Dvs_machine.Config.t ->
  regulator:Dvs_power.Switch_cost.regulator ->
  memory:int array ->
  Formulation.category list -> result
(** [memory] is the input used for verification (normally the first
    category's).  [verify_config] overrides the machine used for the
    verification run (default: the first profile's config); pass a config
    carrying [regulator] when sweeping transition costs, so the simulator
    charges the same costs the MILP modeled. *)

val optimize :
  ?options:options ->
  Dvs_machine.Config.t -> Dvs_ir.Cfg.t -> memory:int array ->
  deadline:float -> result
(** Single input category: profiles, then runs {!optimize_multi} with the
    config's regulator. *)
