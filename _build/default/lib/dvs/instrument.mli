(** Materializing a schedule as real [Modeset] instructions.

    The optimizer's output attaches a mode to every CFG {e edge}; the
    machine model can execute that directly (an idealized "mode-set on
    the wire").  A real compiler must place instructions (Section 7 of
    the paper): naively, every edge needs its own split block — an extra
    jump on every traversal.  This pass places mode-sets frugally and
    then removes provably redundant ones:

    - if all of a block's incoming edges agree on the mode, the mode-set
      moves to the block's head (no split);
    - else if all of the source's outgoing edges agree, it moves before
      the terminator;
    - only genuinely conflicting edges get split blocks;
    - a forward dataflow pass then deletes every mode-set whose mode
      already holds on entry (this is what hoists the silent back-edge
      mode-sets of hot loops out of existence).  *)

val apply : Schedule.t -> Dvs_ir.Cfg.t -> Dvs_ir.Cfg.t
(** Instrumented CFG: the original blocks (same labels) plus split
    blocks appended at fresh labels.  Includes an entry mode-set. *)

val simplify : Dvs_ir.Cfg.t -> Dvs_ir.Cfg.t
(** Redundant-mode-set elimination by forward dataflow over the modes
    (iterated to a fixed point).  Sound for any CFG containing
    [Modeset] instructions. *)

val static_modesets : Dvs_ir.Cfg.t -> int
(** Number of [Modeset] instructions in the program text. *)
