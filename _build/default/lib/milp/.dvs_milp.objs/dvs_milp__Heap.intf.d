lib/milp/heap.mli:
