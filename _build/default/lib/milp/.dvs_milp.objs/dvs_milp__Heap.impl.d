lib/milp/heap.ml: Array Int
