lib/milp/branch_bound.ml: Array Dvs_lp Float Format Hashtbl Heap List Model Option Simplex Sys
