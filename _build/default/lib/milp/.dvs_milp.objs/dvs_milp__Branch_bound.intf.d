lib/milp/branch_bound.mli: Dvs_lp
