(** Minimal binary min-heap with a caller-supplied ordering; the node
    queue of the branch-and-bound search. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Smallest-first with respect to [cmp]. *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the minimum. *)

val peek : 'a t -> 'a option
