open Dvs_lp

type options = {
  max_nodes : int;
  int_tol : float;
  gap_rel : float;
  time_limit : float option;
  rounding : bool;
  sos1 : Model.var list list;
      (** groups constrained to sum to 1 (one binary on per group); lets
          the rounding heuristic round group-consistently *)
  warm_start : (Model.var * float) list;
      (** variable fixings known to admit a feasible completion; solved
          once up front to seed the incumbent *)
  log : (string -> unit) option;
}

let default_options =
  { max_nodes = 200_000; int_tol = 1e-6; gap_rel = 1e-9; time_limit = None;
    rounding = true; sos1 = []; warm_start = []; log = None }

type outcome = Optimal | Feasible | Infeasible | Unbounded | No_solution

type result = {
  outcome : outcome;
  solution : Simplex.solution option;
  bound : float;
  nodes : int;
}

type node = {
  overrides : (Model.var * float * float) list;
  bound : float;  (* objective of the parent relaxation: a valid bound *)
  depth : int;
}

let apply_overrides model overrides =
  let m = Model.copy model in
  List.iter (fun (v, lb, ub) -> Model.set_bounds m v ~lb ~ub) overrides;
  m

(* Effective bounds of [v] at a node: innermost override wins (overrides
   are consed, so the first match is the most recent). *)
let effective_bounds model overrides v =
  match List.find_opt (fun (v', _, _) -> v' = v) overrides with
  | Some (_, lb, ub) -> (lb, ub)
  | None -> Model.bounds model v

let most_fractional ~int_tol int_vars (sol : Simplex.solution) =
  let best = ref None in
  List.iter
    (fun v ->
      let x = sol.values.(v) in
      let frac = x -. Float.of_int (int_of_float (Float.floor x)) in
      let dist = Float.min frac (1.0 -. frac) in
      if dist > int_tol then
        match !best with
        | Some (_, d) when d >= dist -> ()
        | _ -> best := Some (v, dist))
    int_vars;
  Option.map fst !best

let solve ?(options = default_options) model =
  let sense, _ = Model.objective model in
  (* [better a b]: objective [a] beats [b]. *)
  let better a b =
    match sense with Model.Minimize -> a < b | Maximize -> a > b
  in
  let worst = match sense with Model.Minimize -> infinity | _ -> neg_infinity in
  let int_vars = Model.integer_vars model in
  let log fmt =
    Format.kasprintf
      (fun s -> match options.log with Some f -> f s | None -> ())
      fmt
  in
  let start = Sys.time () in
  let out_of_time () =
    match options.time_limit with
    | Some l -> Sys.time () -. start > l
    | None -> false
  in
  let incumbent = ref None in
  let incumbent_obj () =
    match !incumbent with Some (s : Simplex.solution) -> s.objective | None -> worst
  in
  let try_incumbent (s : Simplex.solution) =
    if better s.objective (incumbent_obj ()) then begin
      incumbent := Some s;
      log "incumbent %g" s.objective
    end
  in
  let is_integral (s : Simplex.solution) =
    List.for_all
      (fun v ->
        let x = s.values.(v) in
        Float.abs (x -. Float.round x) <= options.int_tol)
      int_vars
  in
  (* Rounding heuristic: SOS1 groups round to their largest member (one
     on, rest off, respecting fixed bounds); remaining integers round to
     the nearest value.  Complete with an LP. *)
  let in_sos1 =
    let tbl = Hashtbl.create 16 in
    List.iter (fun g -> List.iter (fun v -> Hashtbl.replace tbl v ()) g)
      options.sos1;
    fun v -> Hashtbl.mem tbl v
  in
  let rounding_pass overrides (s : Simplex.solution) =
    if options.rounding && int_vars <> [] then begin
      let m = apply_overrides model overrides in
      let ok = ref true in
      List.iter
        (fun group ->
          (* Largest-value member whose bounds still allow 1. *)
          let best = ref None in
          List.iter
            (fun v ->
              let _, ub = Model.bounds m v in
              if ub >= 1.0 then
                match !best with
                | Some (_, x) when x >= s.values.(v) -> ()
                | _ -> best := Some (v, s.values.(v)))
            group;
          match !best with
          | None -> ok := false
          | Some (winner, _) ->
            List.iter
              (fun v ->
                let lb, ub = Model.bounds m v in
                let x = if v = winner then 1.0 else 0.0 in
                if x < lb || x > ub then ok := false
                else Model.set_bounds m v ~lb:x ~ub:x)
              group)
        options.sos1;
      List.iter
        (fun v ->
          if not (in_sos1 v) then begin
            let lb, ub = Model.bounds m v in
            let x = Float.max lb (Float.min ub (Float.round s.values.(v))) in
            if Float.abs (x -. Float.round x) <= options.int_tol then
              Model.set_bounds m v ~lb:x ~ub:x
            else ok := false
          end)
        int_vars;
      if !ok then
        match Simplex.solve m with
        | Simplex.Optimal s' -> try_incumbent s'
        | Simplex.Infeasible | Simplex.Unbounded -> ()
    end
  in
  (* Diving heuristic: walk down from a relaxation by fixing the most
     fractional integer each step (one flip retry on infeasibility).
     Produces an early incumbent when plain rounding violates a tight
     constraint. *)
  let dive overrides (s0 : Simplex.solution) =
    let budget = ref (2 * List.length int_vars) in
    let rec go overrides (s : Simplex.solution) =
      if !budget <= 0 then ()
      else begin
        decr budget;
        match most_fractional ~int_tol:options.int_tol int_vars s with
        | None -> try_incumbent s
        | Some v ->
          let lb, ub = effective_bounds model overrides v in
          let x = Float.round s.values.(v) in
          let x = Float.max lb (Float.min ub x) in
          let try_fix x =
            let overrides' = (v, x, x) :: overrides in
            match Simplex.solve (apply_overrides model overrides') with
            | Simplex.Optimal s' -> Some (overrides', s')
            | Simplex.Infeasible | Simplex.Unbounded -> None
            | exception Failure _ -> None
          in
          let alt =
            (* The other admissible integer next to the relaxation value. *)
            let x' =
              if x > s.values.(v) then Float.floor s.values.(v)
              else Float.ceil s.values.(v)
            in
            if x' >= lb && x' <= ub && x' <> x then Some x' else None
          in
          (match try_fix x with
          | Some (o', s') -> go o' s'
          | None -> (
            match alt with
            | Some x' -> (
              match try_fix x' with
              | Some (o', s') -> go o' s'
              | None -> ())
            | None -> ()))
      end
    in
    go overrides s0
  in
  let gap_prune bound =
    match !incumbent with
    | None -> false
    | Some s ->
      let inc = s.Simplex.objective in
      let slack = options.gap_rel *. Float.max 1.0 (Float.abs inc) in
      (match sense with
      | Model.Minimize -> bound >= inc -. slack
      | Maximize -> bound <= inc +. slack)
  in
  let cmp_nodes a b =
    let c =
      match sense with
      | Model.Minimize -> Float.compare a.bound b.bound
      | Maximize -> Float.compare b.bound a.bound
    in
    if c <> 0 then c else compare b.depth a.depth
  in
  let queue = Heap.create ~cmp:cmp_nodes in
  let nodes = ref 0 in
  let unbounded = ref false in
  let stopped_early = ref false in
  (* Best proven bound = best over open nodes once the root is solved. *)
  let finish () =
    let open_bound =
      match Heap.peek queue with Some n -> n.bound | None -> incumbent_obj ()
    in
    let bound =
      if Heap.is_empty queue then incumbent_obj () else open_bound
    in
    match !incumbent with
    | Some s ->
      let outcome =
        if !stopped_early && not (gap_prune bound) then Feasible else Optimal
      in
      { outcome; solution = Some s; bound; nodes = !nodes }
    | None ->
      if !unbounded then
        { outcome = Unbounded; solution = None; bound; nodes = !nodes }
      else if !stopped_early then
        { outcome = No_solution; solution = None; bound; nodes = !nodes }
      else { outcome = Infeasible; solution = None; bound; nodes = !nodes }
  in
  (* Seed the incumbent from the caller's known-feasible fixing. *)
  if options.warm_start <> [] then begin
    let m = Model.copy model in
    List.iter (fun (v, x) -> Model.set_bounds m v ~lb:x ~ub:x)
      options.warm_start;
    match Simplex.solve m with
    | Simplex.Optimal s when is_integral s ->
      let values = Array.copy s.values in
      List.iter (fun v -> values.(v) <- Float.round values.(v)) int_vars;
      try_incumbent { s with values }
    | Simplex.Optimal _ | Simplex.Infeasible | Simplex.Unbounded -> ()
    | exception Failure _ -> ()
  end;
  let root_bound =
    match sense with Model.Minimize -> neg_infinity | _ -> infinity
  in
  Heap.push queue { overrides = []; bound = root_bound; depth = 0 };
  let continue_search = ref true in
  while !continue_search do
    if Heap.is_empty queue then continue_search := false
    else if !nodes >= options.max_nodes || out_of_time () then begin
      stopped_early := true;
      continue_search := false
    end
    else begin
      let n = Option.get (Heap.pop queue) in
      if gap_prune n.bound then ( (* fathomed by a newer incumbent *) )
      else begin
        incr nodes;
        let m = apply_overrides model n.overrides in
        match
          try Simplex.solve m
          with Failure _ ->
            (* Numerical trouble in this node's relaxation: stop cleanly
               with the incumbent rather than crash the search. *)
            stopped_early := true;
            continue_search := false;
            Simplex.Infeasible
        with
        | _ when not !continue_search -> ()
        | Simplex.Infeasible -> ()
        | Simplex.Unbounded ->
          unbounded := true;
          continue_search := false
        | Simplex.Optimal s ->
          if gap_prune s.objective then ()
          else if is_integral s then begin
            (* Snap integer values exactly. *)
            let values = Array.copy s.values in
            List.iter
              (fun v -> values.(v) <- Float.round values.(v))
              int_vars;
            try_incumbent { s with values }
          end
          else begin
            if n.depth = 0 || !nodes mod 25 = 0 then
              rounding_pass n.overrides s;
            if n.depth = 0 && !incumbent = None then dive n.overrides s;
            match most_fractional ~int_tol:options.int_tol int_vars s with
            | None -> try_incumbent s
            | Some v ->
              let x = s.values.(v) in
              let lb, ub = effective_bounds model n.overrides v in
              let fl = Float.floor x and ce = Float.ceil x in
              if fl >= lb then
                Heap.push queue
                  { overrides = (v, lb, fl) :: n.overrides;
                    bound = s.objective; depth = n.depth + 1 };
              if ce <= ub then
                Heap.push queue
                  { overrides = (v, ce, ub) :: n.overrides;
                    bound = s.objective; depth = n.depth + 1 }
          end
      end
    end
  done;
  let r = finish () in
  log "done: %d nodes, bound %g" r.nodes r.bound;
  r
