(** Branch and bound over the {!Dvs_lp.Simplex} relaxation.

    Best-bound node selection, most-fractional branching, and a
    fix-and-complete rounding heuristic that seeds the incumbent early.
    This is the solver that replaces the paper's CPLEX: the DVS MILPs it
    targets have a few hundred binaries (after edge filtering) with a
    one-mode-per-edge SOS1 structure whose LP relaxations are close to
    integral, so a textbook search suffices. *)

type options = {
  max_nodes : int;  (** node budget; default 200_000 *)
  int_tol : float;  (** integrality tolerance; default 1e-6 *)
  gap_rel : float;  (** relative optimality gap to stop at; default 1e-9 *)
  time_limit : float option;  (** CPU seconds *)
  rounding : bool;
      (** run the rounding heuristic (root and periodically) *)
  sos1 : Dvs_lp.Model.var list list;
      (** groups whose binaries sum to 1; guides the rounding heuristic
          (the one-mode-per-edge structure of the DVS formulation) *)
  warm_start : (Dvs_lp.Model.var * float) list;
      (** variable fixings known to admit a feasible completion, solved
          once to seed the incumbent (e.g. every edge at the fastest
          mode) *)
  log : (string -> unit) option;
}

val default_options : options

type outcome =
  | Optimal  (** proven within the gap *)
  | Feasible  (** incumbent found, but a limit stopped the proof *)
  | Infeasible
  | Unbounded
  | No_solution  (** limits hit before any incumbent *)

type result = {
  outcome : outcome;
  solution : Dvs_lp.Simplex.solution option;
  bound : float;  (** best proven bound on the optimum *)
  nodes : int;  (** nodes explored *)
}

val solve : ?options:options -> Dvs_lp.Model.t -> result
(** Integrality markers on the model's variables are enforced; everything
    else is as in the LP.  Works for both senses. *)
