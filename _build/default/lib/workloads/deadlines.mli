(** Deadline construction, Table 4 style: five application-specific
    points spanning the feasible range from "must run at the fastest
    mode" to "the slowest mode almost suffices".

    Convention used throughout this repo: deadline 1 is the most
    stringent, deadline 5 the most lax.  (The paper's Tables 1 and 6
    label the lax end "Deadline 1" while Table 4 and Figures 15-18 use
    the opposite order; we normalize to the Table 4 order and note this
    in EXPERIMENTS.md.) *)

val fractions : float array
(** [[| 0.01; 0.03; 0.12; 0.57; 0.98 |]] — positions inside
    [[t_fast, t_slow]], fitted to the paper's Table 4 choices. *)

val of_times : t_fast:float -> t_slow:float -> float array
(** Five deadlines; requires [t_fast <= t_slow]. *)

val of_profile : Dvs_profile.Profile.t -> float array
(** From the pinned fastest/slowest run times of a profile. *)
