lib/workloads/deadlines.mli: Dvs_profile
