lib/workloads/deadlines.ml: Array Dvs_profile
