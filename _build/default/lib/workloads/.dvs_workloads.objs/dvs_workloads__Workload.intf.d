lib/workloads/workload.mli: Dvs_ir Dvs_lang Dvs_machine Dvs_power
