lib/workloads/rng.mli:
