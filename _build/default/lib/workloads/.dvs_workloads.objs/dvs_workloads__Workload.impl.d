lib/workloads/workload.ml: Array Dvs_lang Dvs_machine Hashtbl List Rng
