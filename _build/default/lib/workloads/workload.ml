type t = {
  name : string;
  description : string;
  source : string;
  inputs : string list;
  fill : Dvs_lang.Lower.layout -> input:string -> int array;
}

(* Chunked like the real codec: per-chunk adaptation prologue, encode
   loop, and a checksum epilogue.  The phase boundaries cross only once
   per chunk, so they are cheap mode-switch points for the MILP. *)
let adpcm_source =
  "int pcm[6144]; int out[6144];\n\
   int c; int i; int t; int pred; int step; int diff; int code; int acc;\n\
   int delta; int base; int bias; int sum;\n\
   pred = 0; step = 16; acc = 0; sum = 0;\n\
   for (c = 0; c < 48; c = c + 1) {\n\
   \  bias = 0;\n\
   \  for (i = 0; i < 160; i = i + 1) {\n\
   \    bias = bias + ((c * 13 + i * 7) % 23) - 11;\n\
   \    bias = bias ^ (i << 1);\n\
   \    bias = bias + (bias >> 5);\n\
   \  }\n\
   \  base = c * 128;\n\
   \  for (i = 0; i < 128; i = i + 1) {\n\
   \    t = pcm[base + i];\n\
   \    acc = acc + ((i * 37) >> 3);\n\
   \    diff = t - pred + (bias & 3);\n\
   \    code = 0;\n\
   \    if (diff < 0) { code = 8; diff = 0 - diff; }\n\
   \    if (diff >= step) { code = code + 4; diff = diff - step; }\n\
   \    if (diff >= (step >> 1)) { code = code + 2; diff = diff - (step >> 1); }\n\
   \    if (diff >= (step >> 2)) { code = code + 1; }\n\
   \    delta = (step * (((code & 7) * 2) + 1)) / 8;\n\
   \    if (code >= 8) { pred = pred - delta; } else { pred = pred + delta; }\n\
   \    if (pred > 32767) { pred = 32767; }\n\
   \    if (pred < 0 - 32768) { pred = 0 - 32768; }\n\
   \    step = (step * (12 + (code & 7))) / 12;\n\
   \    if (step < 16) { step = 16; }\n\
   \    if (step > 32767) { step = 32767; }\n\
   \    out[base + i] = code + (acc & 1);\n\
   }\n\
   \  for (i = 0; i < 64; i = i + 1) {\n\
   \    sum = sum + out[base + i * 2];\n\
   \    sum = sum ^ (sum >> 7);\n\
   }\n\
   }"

let epic_source =
  "int img[16384]; int tmp[16384]; int outp[4096];\n\
   int w; int h; int i; int j; int a; int b; int c;\n\
   w = 128; h = 128;\n\
   for (i = 0; i < h; i = i + 1) {\n\
   \  for (j = 1; j < w - 1; j = j + 1) {\n\
   \    a = img[i * 128 + j - 1];\n\
   \    b = img[i * 128 + j];\n\
   \    c = img[i * 128 + j + 1];\n\
   \    tmp[i * 128 + j] = (a + 2 * b + c) / 4;\n\
   \  }\n\
   }\n\
   for (i = 1; i < h - 1; i = i + 2) {\n\
   \  for (j = 0; j < w; j = j + 2) {\n\
   \    a = tmp[(i - 1) * 128 + j];\n\
   \    b = tmp[i * 128 + j];\n\
   \    c = tmp[(i + 1) * 128 + j];\n\
   \    outp[(i / 2) * 64 + (j / 2)] = (a + 2 * b + c) / 4;\n\
   \  }\n\
   }"

(* Per-frame phases like the real encoder: preemphasis/windowing, the
   autocorrelation lag loop, then reflection-coefficient postprocessing.
   Phase edges cross once per frame — cheap mode-switch points. *)
let gsm_source =
  "int speech[8000]; int lar[8]; int wind[160];\n\
   int frames; int f; int k; int n; int acc; int base; int t; int u; int e;\n\
   int r;\n\
   frames = 48;\n\
   for (f = 0; f < frames; f = f + 1) {\n\
   \  base = f * 160;\n\
   \  for (n = 0; n < 160; n = n + 1) {\n\
   \    t = speech[base + n];\n\
   \    wind[n] = t - ((t * 7) >> 3) + ((n * (160 - n)) >> 6);\n\
   \  }\n\
   \  for (k = 0; k < 8; k = k + 1) {\n\
   \    acc = 0;\n\
   \    for (n = 0; n < 152; n = n + 1) {\n\
   \      t = wind[n];\n\
   \      u = wind[n + k];\n\
   \      acc = acc + (t * u) / 64;\n\
   \      if (acc > 262144) { acc = acc - (acc >> 3); }\n\
   \      else { if (acc < 0 - 262144) { acc = acc - (acc >> 3); } }\n\
   \    }\n\
   \    e = acc / 128;\n\
   \    lar[k] = e - (e * e) / 4096;\n\
   \  }\n\
   \  r = 0;\n\
   \  for (k = 0; k < 8; k = k + 1) {\n\
   \    e = lar[k];\n\
   \    for (n = 0; n < 24; n = n + 1) {\n\
   \      e = e + ((e * e) >> 12) - (e >> 3);\n\
   \      r = r ^ e;\n\
   \    }\n\
   \    lar[k] = e + (r & 7);\n\
   \  }\n\
   }"

let mpeg_source =
  "int header[4];\n\
   int reff[32768]; int cur[4096]; int outp[4096];\n\
   int nb; int useb; int sd; int span;\n\
   int blk; int px; int mv; int t; int u; int acc; int i; int q; int base;\n\
   nb = header[0]; useb = header[1]; sd = header[2]; span = header[3];\n\
   for (blk = 0; blk < nb; blk = blk + 1) {\n\
   \  sd = (sd * 1103515 + 12345) % 1048576;\n\
   \  mv = sd % span;\n\
   \  base = (blk % 64) * 64;\n\
   \  acc = 0;\n\
   \  for (px = 0; px < 64; px = px + 2) {\n\
   \    t = reff[(mv + px * 509) % 32768];\n\
   \    u = reff[(mv + (px + 1) * 509) % 32768];\n\
   \    acc = acc + ((px * 7) & 31);\n\
   \    acc = acc ^ (px << 1);\n\
   \    cur[base + px] = t * 3 + (t >> 2) + acc % 8;\n\
   \    cur[base + px + 1] = u * 3 + (u >> 2) + acc % 8;\n\
   \  }\n\
   \  for (i = 0; i < 64; i = i + 1) {\n\
   \    q = cur[base + i];\n\
   \    q = q + (q >> 1) - (q >> 3);\n\
   \    q = (q * 5) / 3;\n\
   \    outp[base + i] = q;\n\
   \  }\n\
   \  if (useb > 0) {\n\
   \    for (px = 0; px < 64; px = px + 1) {\n\
   \      t = reff[(mv + 17 + px * 263) % 32768];\n\
   \      u = outp[base + px];\n\
   \      outp[base + px] = (t + u) / 2;\n\
   \    }\n\
   \    for (px = 0; px < 64; px = px + 1) {\n\
   \      t = reff[(mv + 29 + px * 151) % 32768];\n\
   \      u = outp[base + px];\n\
   \      q = (t * 3 + u * 5) / 8;\n\
   \      outp[base + px] = q + ((q >> 4) & 3);\n\
   \    }\n\
   \  }\n\
   }"

let ghostscript_source =
  "int page[512]; int spans[64];\n\
   int y; int x; int s; int n; int acc; int t; int lim;\n\
   for (y = 0; y < 48; y = y + 1) {\n\
   \  n = (y * 7) % 12 + 2;\n\
   \  for (s = 0; s < n; s = s + 1) {\n\
   \    spans[s] = ((y * 31 + s * 17) % 40) + s;\n\
   \  }\n\
   \  acc = 0;\n\
   \  for (s = 0; s < n; s = s + 1) {\n\
   \    t = spans[s];\n\
   \    if (t % 3 == 0) { acc = acc + t * 2; }\n\
   \    else { if (t % 3 == 1) { acc = acc - t; }\n\
   \           else { acc = acc + (t >> 1); } }\n\
   \    lim = t % 8 + 1;\n\
   \    for (x = 0; x < lim; x = x + 1) {\n\
   \      page[(y * 8 + x) % 512] = acc + x;\n\
   \    }\n\
   \  }\n\
   }"

let mpg123_source =
  "int stream[24576]; int window[512]; int pcmout[4096];\n\
   int g; int sb; int k; int acc; int base; int t; int u; int i;\n\
   for (i = 0; i < 512; i = i + 1) { window[i] = (i * 97) % 255 - 127; }\n\
   for (g = 0; g < 44; g = g + 1) {\n\
   \  base = g * 512;\n\
   \  for (sb = 0; sb < 8; sb = sb + 1) {\n\
   \    acc = 0;\n\
   \    for (k = 0; k < 64; k = k + 1) {\n\
   \      t = stream[base + sb * 64 + k];\n\
   \      u = window[sb * 64 + k];\n\
   \      acc = acc + (t * u) / 256;\n\
   \      if ((t & 3) == 0) { acc = acc + (t >> 2) - (u >> 3); }\n\
   \    }\n\
   \    pcmout[(g * 8 + sb) % 4096] = acc;\n\
   \  }\n\
   }"

let blank layout = Array.make layout.Dvs_lang.Lower.memory_words 0

let fill_array layout mem name f =
  let base = Dvs_lang.Lower.array_base layout name in
  let _, _, size =
    List.find (fun (n, _, _) -> n = name) layout.Dvs_lang.Lower.arrays
  in
  for i = 0 to size - 1 do
    mem.(base + i) <- f i
  done

let signed_stream seed amplitude layout mem name =
  let r = Rng.create seed in
  fill_array layout mem name (fun _ -> Rng.int r (2 * amplitude) - amplitude)

let adpcm =
  { name = "adpcm";
    description = "ADPCM-style speech encode: dependent per-sample chains";
    source = adpcm_source;
    inputs = [ "clinton"; "tone" ];
    fill =
      (fun layout ~input ->
        let mem = blank layout in
        (match input with
        | "clinton" -> signed_stream 101 2048 layout mem "pcm"
        | "tone" ->
          fill_array layout mem "pcm" (fun i -> ((i * 13) mod 97) - 48)
        | other -> invalid_arg ("adpcm: unknown input " ^ other));
        mem) }

let epic =
  { name = "epic";
    description = "EPIC-style pyramid filtering: strided image passes";
    source = epic_source;
    inputs = [ "baboon"; "gradient" ];
    fill =
      (fun layout ~input ->
        let mem = blank layout in
        (match input with
        | "baboon" ->
          let r = Rng.create 202 in
          fill_array layout mem "img" (fun _ -> Rng.int r 256)
        | "gradient" ->
          fill_array layout mem "img" (fun i -> (i / 128) + (i mod 128))
        | other -> invalid_arg ("epic: unknown input " ^ other));
        mem) }

let gsm =
  { name = "gsm";
    description = "GSM-style LPC autocorrelation: hit-dominated MACs";
    source = gsm_source;
    inputs = [ "speech"; "silence" ];
    fill =
      (fun layout ~input ->
        let mem = blank layout in
        (match input with
        | "speech" -> signed_stream 303 1024 layout mem "speech"
        | "silence" ->
          fill_array layout mem "speech" (fun i -> (i mod 7) - 3)
        | other -> invalid_arg ("gsm: unknown input " ^ other));
        mem) }

let mpeg_headers =
  [ ("m100b", (520, 0, 11, 4096));
    ("bbc", (560, 0, 23, 8192));
    ("flwr", (420, 1, 37, 4096));
    ("cact", (424, 1, 51, 8192)) ]

let mpeg =
  { name = "mpeg";
    description =
      "MPEG-decode-style motion compensation: scattered fetches + IDCT";
    source = mpeg_source;
    inputs = List.map fst mpeg_headers;
    fill =
      (fun layout ~input ->
        let mem = blank layout in
        let nb, useb, seed, span =
          match List.assoc_opt input mpeg_headers with
          | Some h -> h
          | None -> invalid_arg ("mpeg: unknown input " ^ input)
        in
        let base = Dvs_lang.Lower.array_base layout "header" in
        mem.(base) <- nb;
        mem.(base + 1) <- useb;
        mem.(base + 2) <- seed;
        mem.(base + 3) <- span;
        let r = Rng.create (1000 + seed) in
        fill_array layout mem "reff" (fun _ -> Rng.int r 256);
        mem) }

let ghostscript =
  { name = "ghostscript";
    description = "Ghostscript-style span rasterization: short and branchy";
    source = ghostscript_source;
    inputs = [ "page" ];
    fill = (fun layout ~input:_ -> blank layout) }

let mpg123 =
  { name = "mpg123";
    description = "mpg123-style subband synthesis: windowed dot products";
    source = mpg123_source;
    inputs = [ "track"; "noise" ];
    fill =
      (fun layout ~input ->
        let mem = blank layout in
        (match input with
        | "track" -> signed_stream 404 512 layout mem "stream"
        | "noise" -> signed_stream 505 2048 layout mem "stream"
        | other -> invalid_arg ("mpg123: unknown input " ^ other));
        mem) }

(* An extra benchmark beyond the paper's six: JPEG-style block DCT +
   quantization.  Available to the tools and tests but kept out of the
   paper-table reproductions. *)
let jpeg_source =
  "int image[16384]; int quant[64]; int coefs[64]; int outp[16384];\n\
   int blocks; int bx; int i; int j; int t; int u; int acc; int base;\n\
   blocks = 200;\n\
   for (i = 0; i < 64; i = i + 1) { quant[i] = 1 + (i % 16); }\n\
   for (bx = 0; bx < blocks; bx = bx + 1) {\n\
   \  base = (bx * 331) % 16320;\n\
   \  for (i = 0; i < 8; i = i + 1) {\n\
   \    acc = 0;\n\
   \    for (j = 0; j < 8; j = j + 1) {\n\
   \      t = image[base + i * 8 + j];\n\
   \      acc = acc + t * (8 - j) - (t >> 1);\n\
   \      coefs[i * 8 + j] = acc + (t << 1);\n\
   \    }\n\
   \  }\n\
   \  for (i = 0; i < 64; i = i + 1) {\n\
   \    u = coefs[i] / quant[i];\n\
   \    if (u > 255) { u = 255; }\n\
   \    if (u < 0 - 255) { u = 0 - 255; }\n\
   \    outp[(bx * 64 + i) % 16384] = u;\n\
   \  }\n\
   }"

let jpeg =
  { name = "jpeg";
    description =
      "JPEG-style block transform + quantization (extra, beyond the \
       paper's six)";
    source = jpeg_source;
    inputs = [ "lena"; "noise" ];
    fill =
      (fun layout ~input ->
        let mem = blank layout in
        (match input with
        | "lena" ->
          fill_array layout mem "image" (fun i ->
              128 + (((i mod 128) - 64) * (64 - (i / 128 mod 64)) / 64))
        | "noise" ->
          let r = Rng.create 606 in
          fill_array layout mem "image" (fun _ -> Rng.int r 256)
        | other -> invalid_arg ("jpeg: unknown input " ^ other));
        mem) }

let all = [ adpcm; epic; gsm; mpeg; ghostscript; mpg123; jpeg ]

let find name = List.find (fun w -> w.name = name) all

let compiled = Hashtbl.create 8

let load w ~input =
  let cfg, layout =
    match Hashtbl.find_opt compiled w.name with
    | Some pair -> pair
    | None ->
      let pair = Dvs_lang.Lower.compile_string w.source in
      Hashtbl.replace compiled w.name pair;
      pair
  in
  (cfg, layout, w.fill layout ~input)

let default_input w = List.hd w.inputs

let eval_config ?mode_table ?regulator ?(dram_latency = 120e-9) () =
  Dvs_machine.Config.default
    ~l1d:{ Dvs_machine.Config.size_bytes = 8 * 1024; assoc = 4;
           block_bytes = 32; latency_cycles = 1 }
    ~l2:{ Dvs_machine.Config.size_bytes = 64 * 1024; assoc = 4;
          block_bytes = 32; latency_cycles = 16 }
    ~dram_latency ?mode_table ?regulator ()

let mpeg_category_no_b = [ "m100b"; "bbc" ]

let mpeg_category_b = [ "flwr"; "cact" ]
