type t = { mutable state : int64 }

let create seed =
  let s = Int64.of_int (if seed = 0 then 0x9E3779B9 else seed) in
  { state = s }

let next t =
  (* xorshift64-star *)
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_right_logical x 12) in
  let x = Int64.logxor x (Int64.shift_left x 25) in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let fill t a ~bound =
  for i = 0 to Array.length a - 1 do
    a.(i) <- int t bound
  done
