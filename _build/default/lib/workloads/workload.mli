(** The six MediaBench-analog benchmarks (DESIGN.md section 2 documents
    the substitution).  Each is a MiniC program whose compute/memory mix
    is shaped to land in the same region of the paper's parameter space
    (Table 7) as the original at ~1/50 dynamic scale:

    - [adpcm]: speech codec — long dependent arithmetic chains per
      sample, one streaming pass (compute-bound);
    - [epic]: image-pyramid filtering — two passes over an image, the
      vertical one strided (balanced, miss-heavy);
    - [gsm]: LPC autocorrelation over small windows — cache-hit-dominated
      with heavy multiply-accumulate (hit-heavy, tiny miss time);
    - [mpeg]: motion-compensated decode — scattered reference fetches
      over an L2-exceeding frame plus IDCT-like compute; four canned
      inputs in two encoding categories (with and without B-frame-style
      interpolation), for the Section 4.3/6.4 multi-input experiments;
    - [ghostscript]: short, branchy span rasterization (tiny run, the
      paper's smallest benchmark);
    - [mpg123]: windowed subband synthesis (hybrid).

    An extra seventh benchmark, [jpeg] (block transform + quantization),
    is available to the tools and tests but excluded from the
    paper-table reproductions. *)

type t = {
  name : string;
  description : string;
  source : string;  (** MiniC text *)
  inputs : string list;  (** named input variants; first is default *)
  fill : Dvs_lang.Lower.layout -> input:string -> int array;
      (** builds the initial data segment for an input variant *)
}

val all : t list

val find : string -> t
(** Raises [Not_found]. *)

val load : t -> input:string -> Dvs_ir.Cfg.t * Dvs_lang.Lower.layout * int array
(** Compile (memoized per workload) and build the input memory. *)

val default_input : t -> string

val eval_config :
  ?mode_table:Dvs_power.Mode.table ->
  ?regulator:Dvs_power.Switch_cost.regulator ->
  ?dram_latency:float ->
  unit -> Dvs_machine.Config.t
(** The evaluation machine: cache capacities scaled down (L1 8 KB,
    L2 64 KB) in proportion to the workloads' scaled working sets, so the
    miss behavior of the full-size originals is preserved; everything
    else as {!Dvs_machine.Config.default}. *)

val mpeg_category_no_b : string list
(** mpeg inputs without B-frame-style work ("m100b", "bbc"). *)

val mpeg_category_b : string list
(** mpeg inputs with it ("flwr", "cact"). *)
