(** Small deterministic PRNG (xorshift64-star) for reproducible synthetic
    input data.  Not [Stdlib.Random]: every workload input must be
    bit-identical across runs and machines. *)

type t

val create : int -> t
(** Seeded; the seed fully determines the stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]; [bound > 0]. *)

val fill : t -> int array -> bound:int -> unit
