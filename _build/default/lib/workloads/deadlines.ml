let fractions = [| 0.01; 0.03; 0.12; 0.57; 0.98 |]

let of_times ~t_fast ~t_slow =
  if not (t_fast <= t_slow) then
    invalid_arg "Deadlines.of_times: t_fast must not exceed t_slow";
  Array.map (fun f -> t_fast +. (f *. (t_slow -. t_fast))) fractions

let of_profile p =
  let n = Array.length p.Dvs_profile.Profile.runs in
  of_times
    ~t_fast:(Dvs_profile.Profile.pinned_time p ~mode:(n - 1))
    ~t_slow:(Dvs_profile.Profile.pinned_time p ~mode:0)
