(** Classic backward liveness dataflow over virtual registers.

    Used by dead-code elimination and useful for diagnostics.  Branch
    condition registers are uses; [Store] uses both operands; [Modeset]
    and [Nop] neither use nor define registers. *)

type t

val compute : ?exit_live:Instr.reg list -> Cfg.t -> t
(** [exit_live] is the set of registers whose final values are the
    program's observable output, kept live across [Halt] (default: every
    register in the program — maximally conservative).  A compiler
    passes its named scalars here. *)

val live_in : t -> Cfg.label -> Instr.reg list
(** Sorted. *)

val live_out : t -> Cfg.label -> Instr.reg list

val live_after : t -> Cfg.label -> int -> Instr.reg -> bool
(** [live_after t l i r]: is [r] live immediately after instruction
    index [i] of block [l] (i.e. could a later use read the value it
    holds there)?  Raises [Invalid_argument] on bad indices. *)
