(** RISC-like instructions over unlimited virtual registers.

    This is the compilation target of the MiniC frontend and the input of
    the cycle-level machine simulator.  Latencies are *compute* latencies;
    memory instructions additionally pay the cache hierarchy's cost, which
    the machine model owns. *)

type reg = int

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Slt | Sle | Seq | Sne

type t =
  | Li of reg * int  (** load immediate *)
  | Mov of reg * reg
  | Binop of binop * reg * reg * reg  (** [Binop (op, rd, rs1, rs2)] *)
  | Load of reg * reg * int  (** [rd <- mem.(rs + offset)] *)
  | Store of reg * reg * int  (** [mem.(rs + offset) <- rv] *)
  | Nop
  | Modeset of int
      (** DVS mode-set pseudo-instruction (index into the mode table);
          inserted by the scheduler, never by the frontend. *)

val latency : t -> int
(** Issue-to-result compute cycles: 1 for simple ALU ops and [Li]/[Mov],
    3 for [Mul], 12 for [Div]/[Rem], 1 for address generation of memory
    ops (the hierarchy adds the rest), 0 for [Nop]/[Modeset] (the machine
    charges mode-set costs from the regulator model instead). *)

val defs : t -> reg list
(** Register written, if any. *)

val uses : t -> reg list
(** Registers read. *)

val is_memory : t -> bool

val max_reg : t -> reg
(** Largest register mentioned; [-1] if none. *)

val eval_binop : binop -> int -> int -> int
(** Integer semantics (division by zero yields 0, like a trap handler that
    substitutes a default — keeps synthetic workloads total). *)

val pp : Format.formatter -> t -> unit
