(** Optional IR optimizations.

    The MiniC lowering is deliberately naive (every literal becomes an
    [Li], scalar copies become [Mov]); these passes clean that up.  They
    are {e not} applied by default — workload timing characteristics are
    calibrated against the naive code — but the ablation experiment
    measures how compiler optimization shifts the DVS parameter mix, and
    the test-suite checks semantic preservation.

    All passes preserve [Store], [Modeset] and control behavior
    exactly. *)

val constant_fold : Cfg.t -> Cfg.t
(** Block-local constant propagation and folding, copy propagation, and
    constant-branch-to-jump rewriting. *)

val dead_code : ?exit_live:Instr.reg list -> Cfg.t -> Cfg.t
(** Remove pure instructions whose destination is dead (global liveness;
    [exit_live] as in {!Liveness.compute}). *)

val optimize : ?rounds:int -> ?exit_live:Instr.reg list -> Cfg.t -> Cfg.t
(** [constant_fold] then [dead_code], iterated (default 3 rounds or to a
    fixed point, whichever first). *)

val instruction_count : Cfg.t -> int
