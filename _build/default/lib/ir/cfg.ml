type label = int

type terminator =
  | Jump of label
  | Branch of Instr.reg * label * label
  | Halt

type block = {
  label : label;
  name : string;
  body : Instr.t array;
  term : terminator;
}

type edge = { src : label; dst : label }

type t = {
  entry : label;
  blocks : block array;
  edges : edge array;
  edge_idx : (edge, int) Hashtbl.t;
  succs : label list array;
  preds : label list array;
}

let term_targets = function
  | Jump l -> [ l ]
  | Branch (_, l1, l2) -> if l1 = l2 then [ l1 ] else [ l1; l2 ]
  | Halt -> []

let build_graph entry blocks =
  let n = Array.length blocks in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  let edge_list = ref [] in
  Array.iter
    (fun b ->
      let ts = term_targets b.term in
      succs.(b.label) <- ts;
      List.iter
        (fun dst ->
          preds.(dst) <- b.label :: preds.(dst);
          edge_list := { src = b.label; dst } :: !edge_list)
        ts)
    blocks;
  let edges = Array.of_list (List.rev !edge_list) in
  let edge_idx = Hashtbl.create (Array.length edges) in
  Array.iteri (fun i e -> Hashtbl.replace edge_idx e i) edges;
  { entry; blocks; edges; edge_idx; succs; preds }

let entry g = g.entry

let blocks g = g.blocks

let block g l =
  if l < 0 || l >= Array.length g.blocks then
    invalid_arg (Printf.sprintf "Cfg.block: label %d out of range" l);
  g.blocks.(l)

let num_blocks g = Array.length g.blocks

let successors g l = g.succs.(l)

let predecessors g l = g.preds.(l)

let edges g = g.edges

let edge_index g e =
  match Hashtbl.find_opt g.edge_idx e with
  | Some i -> i
  | None -> raise Not_found

let validate g =
  let n = Array.length g.blocks in
  let ok = ref (Ok ()) in
  let fail fmt = Printf.ksprintf (fun s -> if !ok = Ok () then ok := Error s) fmt in
  if n = 0 then fail "empty CFG";
  if g.entry < 0 || g.entry >= n then fail "entry label %d out of range" g.entry;
  Array.iteri
    (fun i b ->
      if b.label <> i then fail "block %d carries label %d" i b.label;
      List.iter
        (fun t ->
          if t < 0 || t >= n then
            fail "block %d targets out-of-range label %d" i t)
        (term_targets b.term))
    g.blocks;
  !ok

let map_blocks f g =
  let blocks = Array.map f g.blocks in
  Array.iteri
    (fun i b ->
      if b.label <> i then invalid_arg "Cfg.map_blocks: label changed")
    blocks;
  build_graph g.entry blocks

let pp_term ppf = function
  | Jump l -> Format.fprintf ppf "jump L%d" l
  | Branch (r, l1, l2) -> Format.fprintf ppf "br r%d ? L%d : L%d" r l1 l2
  | Halt -> Format.pp_print_string ppf "halt"

let pp ppf g =
  Format.fprintf ppf "@[<v>entry: L%d@," g.entry;
  Array.iter
    (fun b ->
      Format.fprintf ppf "L%d (%s):@," b.label b.name;
      Array.iter (fun i -> Format.fprintf ppf "  %a@," Instr.pp i) b.body;
      Format.fprintf ppf "  %a@," pp_term b.term)
    g.blocks;
  Format.fprintf ppf "@]"

let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph cfg {\n";
  Array.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=box,label=\"L%d %s (%d instrs)\"];\n"
           b.label b.label b.name (Array.length b.body)))
    g.blocks;
  Array.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" e.src e.dst))
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

module Builder = struct
  type pending = {
    p_label : label;
    p_name : string;
    mutable p_body : Instr.t list;  (* reversed *)
    mutable p_term : terminator option;
  }

  type t = { mutable pending : pending list (* reversed *); mutable count : int }

  let create () = { pending = []; count = 0 }

  let add_block ?name b =
    let l = b.count in
    let p_name = match name with Some n -> n | None -> Printf.sprintf "bb%d" l in
    b.pending <- { p_label = l; p_name; p_body = []; p_term = None } :: b.pending;
    b.count <- l + 1;
    l

  let find b l =
    match List.find_opt (fun p -> p.p_label = l) b.pending with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Cfg.Builder: unknown block %d" l)

  let push b l i =
    let p = find b l in
    p.p_body <- i :: p.p_body

  let set_term b l t =
    let p = find b l in
    match p.p_term with
    | Some _ ->
      invalid_arg (Printf.sprintf "Cfg.Builder: block %d already terminated" l)
    | None -> p.p_term <- Some t

  let finish b ~entry =
    let blocks =
      List.rev_map
        (fun p ->
          match p.p_term with
          | None ->
            invalid_arg
              (Printf.sprintf "Cfg.Builder: block %d lacks a terminator"
                 p.p_label)
          | Some term ->
            { label = p.p_label; name = p.p_name;
              body = Array.of_list (List.rev p.p_body); term })
        b.pending
    in
    let blocks = Array.of_list blocks in
    Array.sort (fun a b -> compare a.label b.label) blocks;
    let g = build_graph entry blocks in
    match validate g with
    | Ok () -> g
    | Error msg -> invalid_arg ("Cfg.Builder.finish: " ^ msg)
end
