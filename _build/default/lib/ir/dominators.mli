(** Dominator analysis (Cooper-Harvey-Kennedy "A Simple, Fast Dominance
    Algorithm") and natural-loop discovery.

    Needed by the mode-set hoisting pass: a mode-set on a loop back edge
    is silent on every iteration but the first, so it can be hoisted to
    the loop's preheader region — finding loops is finding back edges,
    which is a dominance question. *)

type t

val compute : Cfg.t -> t
(** Immediate dominators of every block reachable from the entry. *)

val idom : t -> Cfg.label -> Cfg.label option
(** Immediate dominator ([None] for the entry block and for unreachable
    blocks). *)

val dominates : t -> Cfg.label -> Cfg.label -> bool
(** [dominates t a b]: every path from the entry to [b] passes through
    [a].  Reflexive.  False when either block is unreachable. *)

val reachable : t -> Cfg.label -> bool

type loop = {
  header : Cfg.label;
  back_edges : Cfg.edge list;  (** edges [latch -> header] *)
  body : Cfg.label list;  (** includes the header; sorted *)
}

val natural_loops : Cfg.t -> t -> loop list
(** One loop per header (multiple back edges to one header merge),
    innermost-first order not guaranteed. *)

val back_edges : Cfg.t -> t -> Cfg.edge list
(** All edges [a -> b] where [b] dominates [a]. *)
