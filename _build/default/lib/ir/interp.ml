type result = {
  registers : int array;
  memory : int array;
  dyn_instrs : int;
  block_trace : Cfg.label list;
}

exception Out_of_fuel

let max_reg_of_cfg g =
  Array.fold_left
    (fun acc b ->
      let acc =
        Array.fold_left (fun a i -> Int.max a (Instr.max_reg i)) acc b.Cfg.body
      in
      match b.Cfg.term with
      | Cfg.Branch (r, _, _) -> Int.max acc r
      | Cfg.Jump _ | Cfg.Halt -> acc)
    (-1) (Cfg.blocks g)

let run ?(fuel = 10_000_000) ?(trace = false) g ~memory =
  let regs = Array.make (max_reg_of_cfg g + 1) 0 in
  let mem = Array.copy memory in
  let dyn = ref 0 in
  let blocks_seen = ref [] in
  let check_addr a =
    if a < 0 || a >= Array.length mem then
      failwith (Printf.sprintf "Interp.run: address %d out of bounds" a)
  in
  let exec (i : Instr.t) =
    incr dyn;
    match i with
    | Instr.Li (rd, v) -> regs.(rd) <- v
    | Instr.Mov (rd, rs) -> regs.(rd) <- regs.(rs)
    | Instr.Binop (op, rd, rs1, rs2) ->
      regs.(rd) <- Instr.eval_binop op regs.(rs1) regs.(rs2)
    | Instr.Load (rd, rs, off) ->
      let a = regs.(rs) + off in
      check_addr a;
      regs.(rd) <- mem.(a)
    | Instr.Store (rv, rs, off) ->
      let a = regs.(rs) + off in
      check_addr a;
      mem.(a) <- regs.(rv)
    | Instr.Nop | Instr.Modeset _ -> ()
  in
  let rec step label budget =
    if budget <= 0 then raise Out_of_fuel;
    if trace then blocks_seen := label :: !blocks_seen;
    let b = Cfg.block g label in
    Array.iter exec b.Cfg.body;
    match b.Cfg.term with
    | Cfg.Halt -> ()
    | Cfg.Jump l -> step l (budget - 1)
    | Cfg.Branch (r, taken, fallthrough) ->
      step (if regs.(r) <> 0 then taken else fallthrough) (budget - 1)
  in
  step (Cfg.entry g) fuel;
  { registers = regs; memory = mem; dyn_instrs = !dyn;
    block_trace = List.rev !blocks_seen }
