(** Functional (untimed) reference interpreter for CFGs.

    Used to test the MiniC compiler independently of the cycle-level
    machine model, and to cross-validate that model's architectural state:
    both must compute identical registers and memory. *)

type result = {
  registers : int array;
  memory : int array;
  dyn_instrs : int;  (** dynamic instruction count (incl. Nop/Modeset) *)
  block_trace : Cfg.label list;  (** executed blocks, in order *)
}

exception Out_of_fuel

val run :
  ?fuel:int -> ?trace:bool -> Cfg.t -> memory:int array -> result
(** Executes from the entry block until [Halt].  [memory] is copied, not
    mutated.  [fuel] bounds executed blocks (default [10_000_000]) —
    {!Out_of_fuel} signals a likely non-terminating program.  The block
    trace is recorded only when [trace] is true (default false). *)
