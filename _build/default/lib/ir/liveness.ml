module Reg_set = Set.Make (Int)

type t = {
  cfg : Cfg.t;
  l_in : Reg_set.t array;
  l_out : Reg_set.t array;
  exit_live : Reg_set.t;
}

let term_uses = function
  | Cfg.Branch (r, _, _) -> [ r ]
  | Cfg.Jump _ | Cfg.Halt -> []

(* The final architectural state is the program's observable output, so
   a [Halt] keeps every register of the program live. *)
let universe cfg =
  Array.fold_left
    (fun s (b : Cfg.block) ->
      let s =
        Array.fold_left
          (fun s i ->
            List.fold_left (fun s r -> Reg_set.add r s) s
              (Instr.defs i @ Instr.uses i))
          s b.body
      in
      match b.term with
      | Cfg.Branch (r, _, _) -> Reg_set.add r s
      | Cfg.Jump _ | Cfg.Halt -> s)
    Reg_set.empty (Cfg.blocks cfg)

(* use/def through a whole block, backwards:
   in = (out - defs) + uses, respecting instruction order. *)
let transfer (blk : Cfg.block) out =
  let acc = ref (List.fold_left (fun s r -> Reg_set.add r s) out (term_uses blk.term)) in
  for i = Array.length blk.body - 1 downto 0 do
    let ins = blk.body.(i) in
    acc := List.fold_left (fun s r -> Reg_set.remove r s) !acc (Instr.defs ins);
    acc := List.fold_left (fun s r -> Reg_set.add r s) !acc (Instr.uses ins)
  done;
  !acc

let compute ?exit_live cfg =
  let n = Cfg.num_blocks cfg in
  let exit_live =
    match exit_live with
    | Some regs -> Reg_set.of_list regs
    | None -> universe cfg
  in
  let l_in = Array.make n Reg_set.empty in
  let l_out = Array.make n Reg_set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Backward problem: iterate blocks in reverse label order (a decent
       approximation of reverse topological order for our builder). *)
    for l = n - 1 downto 0 do
      let blk = Cfg.block cfg l in
      let out =
        if blk.term = Cfg.Halt then exit_live
        else
          List.fold_left
            (fun s succ -> Reg_set.union s l_in.(succ))
            Reg_set.empty (Cfg.successors cfg l)
      in
      let inn = transfer blk out in
      if not (Reg_set.equal out l_out.(l) && Reg_set.equal inn l_in.(l))
      then begin
        l_out.(l) <- out;
        l_in.(l) <- inn;
        changed := true
      end
    done
  done;
  { cfg; l_in; l_out; exit_live }

let live_in t l = Reg_set.elements t.l_in.(l)

let live_out t l = Reg_set.elements t.l_out.(l)

let live_after t l i r =
  let blk = Cfg.block t.cfg l in
  let len = Array.length blk.body in
  if i < 0 || i >= len then invalid_arg "Liveness.live_after: index";
  (* Walk forward from i+1 within the block; fall back to block-out. *)
  let rec scan j =
    if j >= len then
      (blk.term = Cfg.Halt && Reg_set.mem r t.exit_live)
      || List.mem r (term_uses blk.term)
      || Reg_set.mem r t.l_out.(l)
    else begin
      let ins = blk.body.(j) in
      if List.mem r (Instr.uses ins) then true
      else if List.mem r (Instr.defs ins) then false
      else scan (j + 1)
    end
  in
  scan (i + 1)
