lib/ir/liveness.mli: Cfg Instr
