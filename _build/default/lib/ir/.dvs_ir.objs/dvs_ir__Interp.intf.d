lib/ir/interp.mli: Cfg
