lib/ir/instr.ml: Format Int List
