lib/ir/opt.mli: Cfg Instr
