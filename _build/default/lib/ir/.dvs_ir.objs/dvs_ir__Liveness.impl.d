lib/ir/liveness.ml: Array Cfg Instr Int List Set
