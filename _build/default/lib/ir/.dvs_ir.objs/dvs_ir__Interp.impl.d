lib/ir/interp.ml: Array Cfg Instr Int List Printf
