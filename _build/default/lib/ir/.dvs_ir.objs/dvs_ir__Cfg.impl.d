lib/ir/cfg.ml: Array Buffer Format Hashtbl Instr List Printf
