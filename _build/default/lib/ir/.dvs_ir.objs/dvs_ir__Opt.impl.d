lib/ir/opt.ml: Array Cfg Fun Instr Int List Liveness Map
