(** Control-flow graphs of basic blocks.

    Blocks are identified by dense integer labels.  Every block ends in an
    explicit terminator; edges are the (src, dst) pairs the terminators
    induce.  The DVS optimization is {e edge-based} (Section 4.1 of the
    paper): a mode can be attached to each edge, so edges are first-class
    here ({!edges}, {!edge_index}). *)

type label = int

type terminator =
  | Jump of label
  | Branch of Instr.reg * label * label
      (** [Branch (r, taken, fallthrough)]: taken when [r <> 0]. *)
  | Halt

type block = {
  label : label;
  name : string;
  body : Instr.t array;
  term : terminator;
}

type t

type edge = { src : label; dst : label }

val entry : t -> label

val blocks : t -> block array
(** Indexed by label. *)

val block : t -> label -> block

val num_blocks : t -> int

val successors : t -> label -> label list

val predecessors : t -> label -> label list

val edges : t -> edge array
(** All edges in a fixed order, plus a virtual entry edge is NOT included;
    see {!Dvs_profile} for how the entry context is handled. *)

val edge_index : t -> edge -> int
(** Position of an edge in {!edges}.  Raises [Not_found] for non-edges. *)

val validate : t -> (unit, string) result
(** Checks: entry in range, all terminator targets in range, labels dense
    and consistent with array positions. *)

val map_blocks : (block -> block) -> t -> t
(** Rebuild with transformed blocks (labels must be preserved). *)

val pp : Format.formatter -> t -> unit

val to_dot : t -> string
(** Graphviz rendering (block names as nodes). *)

(** Imperative construction API. *)
module Builder : sig
  type cfg := t

  type t

  val create : unit -> t

  val add_block : ?name:string -> t -> label
  (** Fresh block; body and terminator filled in later. *)

  val push : t -> label -> Instr.t -> unit
  (** Append an instruction to a block's body. *)

  val set_term : t -> label -> terminator -> unit
  (** May be called once per block; raises if re-set. *)

  val finish : t -> entry:label -> cfg
  (** Raises [Invalid_argument] if a block has no terminator or
      {!validate} fails. *)
end
