module Reg_map = Map.Make (Int)

(* Abstract register contents within one block. *)
type value = Const of int | Copy_of of Instr.reg

let constant_fold cfg =
  Cfg.map_blocks
    (fun blk ->
      let env = ref Reg_map.empty in
      let lookup r =
        match Reg_map.find_opt r !env with
        | Some (Const c) -> Some c
        | Some (Copy_of _) | None -> None
      in
      (* Resolve a source register through copy chains. *)
      let rec resolve r =
        match Reg_map.find_opt r !env with
        | Some (Copy_of r') when r' <> r -> resolve r'
        | _ -> r
      in
      let kill rd =
        (* rd changes: drop its binding and any copies of it. *)
        env :=
          Reg_map.filter
            (fun _ v -> match v with Copy_of r -> r <> rd | Const _ -> true)
            (Reg_map.remove rd !env)
      in
      let rewritten = ref [] in
      let emit i = rewritten := i :: !rewritten in
      Array.iter
        (fun (i : Instr.t) ->
          match i with
          | Instr.Li (rd, v) ->
            kill rd;
            env := Reg_map.add rd (Const v) !env;
            emit i
          | Instr.Mov (rd, rs) ->
            let rs = resolve rs in
            (match lookup rs with
            | Some c ->
              kill rd;
              env := Reg_map.add rd (Const c) !env;
              emit (Instr.Li (rd, c))
            | None ->
              kill rd;
              if rs <> rd then env := Reg_map.add rd (Copy_of rs) !env;
              emit (Instr.Mov (rd, rs)))
          | Instr.Binop (op, rd, rs1, rs2) -> (
            let rs1 = resolve rs1 and rs2 = resolve rs2 in
            match (lookup rs1, lookup rs2) with
            | Some a, Some b ->
              let v = Instr.eval_binop op a b in
              kill rd;
              env := Reg_map.add rd (Const v) !env;
              emit (Instr.Li (rd, v))
            | _ ->
              kill rd;
              emit (Instr.Binop (op, rd, rs1, rs2)))
          | Instr.Load (rd, rs, off) ->
            let rs = resolve rs in
            kill rd;
            emit (Instr.Load (rd, rs, off))
          | Instr.Store (rv, rs, off) ->
            emit (Instr.Store (resolve rv, resolve rs, off))
          | Instr.Nop | Instr.Modeset _ -> emit i)
        blk.Cfg.body;
      (* Constant branches become jumps. *)
      let term =
        match blk.Cfg.term with
        | Cfg.Branch (r, taken, fallthrough) -> (
          match lookup (resolve r) with
          | Some c -> Cfg.Jump (if c <> 0 then taken else fallthrough)
          | None -> Cfg.Branch (resolve r, taken, fallthrough))
        | t -> t
      in
      { blk with body = Array.of_list (List.rev !rewritten); term })
    cfg

let is_pure (i : Instr.t) =
  match i with
  | Instr.Li _ | Instr.Mov _ | Instr.Binop _ -> true
  | Instr.Load _ ->
    (* Loads are observationally pure here (no I/O, no faults on valid
       programs) but they shape cache and timing state; keep them. *)
    false
  | Instr.Store _ | Instr.Nop | Instr.Modeset _ -> false

let dead_code ?exit_live cfg =
  let live = Liveness.compute ?exit_live cfg in
  Cfg.map_blocks
    (fun blk ->
      let keep =
        Array.to_list
          (Array.mapi
             (fun idx (i : Instr.t) ->
               let dead =
                 is_pure i
                 && (match Instr.defs i with
                    | [ rd ] -> not (Liveness.live_after live blk.Cfg.label idx rd)
                    | _ -> false)
               in
               if dead then None else Some i)
             blk.Cfg.body)
      in
      { blk with body = Array.of_list (List.filter_map Fun.id keep) })
    cfg

let instruction_count cfg =
  Array.fold_left
    (fun acc (b : Cfg.block) -> acc + Array.length b.body)
    0 (Cfg.blocks cfg)

let optimize ?(rounds = 3) ?exit_live cfg =
  let rec go n cfg =
    if n <= 0 then cfg
    else begin
      let cfg' = dead_code ?exit_live (constant_fold cfg) in
      if instruction_count cfg' = instruction_count cfg then cfg'
      else go (n - 1) cfg'
    end
  in
  go rounds cfg
