type reg = int

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Slt | Sle | Seq | Sne

type t =
  | Li of reg * int
  | Mov of reg * reg
  | Binop of binop * reg * reg * reg
  | Load of reg * reg * int
  | Store of reg * reg * int
  | Nop
  | Modeset of int

let latency = function
  | Li _ | Mov _ -> 1
  | Binop ((Mul : binop), _, _, _) -> 3
  | Binop ((Div | Rem), _, _, _) -> 12
  | Binop (_, _, _, _) -> 1
  | Load _ | Store _ -> 1
  | Nop -> 1
  | Modeset _ -> 0

let defs = function
  | Li (rd, _) | Mov (rd, _) | Binop (_, rd, _, _) | Load (rd, _, _) -> [ rd ]
  | Store _ | Nop | Modeset _ -> []

let uses = function
  | Li _ | Nop | Modeset _ -> []
  | Mov (_, rs) -> [ rs ]
  | Binop (_, _, rs1, rs2) -> [ rs1; rs2 ]
  | Load (_, rs, _) -> [ rs ]
  | Store (rv, rs, _) -> [ rv; rs ]

let is_memory = function
  | Load _ | Store _ -> true
  | Li _ | Mov _ | Binop _ | Nop | Modeset _ -> false

let max_reg i =
  List.fold_left Int.max (-1) (defs i @ uses i)

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 62)
  | Shr -> a asr (b land 62)
  | Slt -> if a < b then 1 else 0
  | Sle -> if a <= b then 1 else 0
  | Seq -> if a = b then 1 else 0
  | Sne -> if a <> b then 1 else 0

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Slt -> "slt" | Sle -> "sle" | Seq -> "seq" | Sne -> "sne"

let pp ppf = function
  | Li (rd, v) -> Format.fprintf ppf "li r%d, %d" rd v
  | Mov (rd, rs) -> Format.fprintf ppf "mov r%d, r%d" rd rs
  | Binop (op, rd, rs1, rs2) ->
    Format.fprintf ppf "%s r%d, r%d, r%d" (binop_name op) rd rs1 rs2
  | Load (rd, rs, off) -> Format.fprintf ppf "ld r%d, %d(r%d)" rd off rs
  | Store (rv, rs, off) -> Format.fprintf ppf "st r%d, %d(r%d)" rv off rs
  | Nop -> Format.pp_print_string ppf "nop"
  | Modeset m -> Format.fprintf ppf "modeset %d" m
