type t = {
  idom : int array;  (* -1 = entry or unreachable *)
  rpo_index : int array;  (* -1 = unreachable *)
  entry : Cfg.label;
}

(* Reverse postorder of the reachable subgraph. *)
let reverse_postorder g =
  let n = Cfg.num_blocks g in
  let state = Array.make n `White in
  let order = ref [] in
  let rec dfs l =
    if state.(l) = `White then begin
      state.(l) <- `Grey;
      List.iter dfs (Cfg.successors g l);
      state.(l) <- `Black;
      order := l :: !order
    end
  in
  dfs (Cfg.entry g);
  !order

let compute g =
  let n = Cfg.num_blocks g in
  let rpo = reverse_postorder g in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i l -> rpo_index.(l) <- i) rpo;
  let idom = Array.make n (-1) in
  let entry = Cfg.entry g in
  idom.(entry) <- entry;
  (* Cooper-Harvey-Kennedy: intersect along the idom chains, iterating
     in reverse postorder until a fixed point. *)
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_index.(!a) > rpo_index.(!b) do
        a := idom.(!a)
      done;
      while rpo_index.(!b) > rpo_index.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> entry then begin
          let preds =
            List.filter
              (fun p -> rpo_index.(p) >= 0 && idom.(p) >= 0)
              (Cfg.predecessors g b)
          in
          match preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(b) <> new_idom then begin
              idom.(b) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  { idom; rpo_index; entry }

let reachable t l = t.rpo_index.(l) >= 0

let idom t l =
  if l = t.entry || not (reachable t l) then None
  else Some t.idom.(l)

let dominates t a b =
  if not (reachable t a && reachable t b) then false
  else begin
    let rec walk x = if x = a then true else if x = t.entry then false
      else walk t.idom.(x)
    in
    walk b
  end

type loop = {
  header : Cfg.label;
  back_edges : Cfg.edge list;
  body : Cfg.label list;
}

let back_edges g t =
  Array.to_list (Cfg.edges g)
  |> List.filter (fun (e : Cfg.edge) ->
         reachable t e.src && reachable t e.dst && dominates t e.dst e.src)

let natural_loops g t =
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (e : Cfg.edge) ->
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt by_header e.dst)
      in
      Hashtbl.replace by_header e.dst (e :: cur))
    (back_edges g t);
  Hashtbl.fold
    (fun header backs acc ->
      (* Body: header plus every block that reaches a latch without
         passing through the header (backwards reachability). *)
      let in_body = Hashtbl.create 16 in
      Hashtbl.replace in_body header ();
      let rec pull l =
        if not (Hashtbl.mem in_body l) then begin
          Hashtbl.replace in_body l ();
          List.iter pull (Cfg.predecessors g l)
        end
      in
      List.iter (fun (e : Cfg.edge) -> pull e.src) backs;
      let body =
        List.sort compare
          (Hashtbl.fold (fun l () acc -> l :: acc) in_body [])
      in
      { header; back_edges = backs; body } :: acc)
    by_header []
  |> List.sort (fun a b -> compare a.header b.header)
