(** The alpha-power delay model of Sakurai-Newton, as used by the paper
    (Section 3.1, assumption 4):

    {v f = k (v - vt)^alpha / v }

    where [vt] is the threshold voltage and [alpha] a technology factor
    (about 1.5 at the paper's time).  [f] is strictly increasing in [v] for
    [v > vt], so the inverse is well defined.

    Units: volts and hertz. *)

type t = private { k : float; vt : float; alpha : float }

val make : k:float -> vt:float -> alpha:float -> t
(** Raises [Invalid_argument] unless [k > 0], [vt >= 0], [alpha >= 1]. *)

val calibrate : vt:float -> alpha:float -> v_anchor:float -> f_anchor:float -> t
(** [calibrate ~vt ~alpha ~v_anchor ~f_anchor] solves for [k] such that the
    law maps [v_anchor] to [f_anchor].  Requires [v_anchor > vt] and
    [f_anchor > 0]. *)

val default : t
(** The paper's settings: [vt = 0.45 V], [alpha = 1.5], calibrated so that
    1.65 V maps to 800 MHz (which also puts 1.3 V near 600 MHz and 0.7 V near
    200 MHz, matching the XScale-like pairs of Section 5.1). *)

val frequency : t -> float -> float
(** [frequency t v] is the maximum clock frequency at supply voltage [v];
    0 when [v <= vt]. *)

val voltage : t -> float -> float
(** [voltage t f] inverts {!frequency}: the minimum supply voltage able to
    sustain clock frequency [f].  Requires [f >= 0]. *)

val pp : Format.formatter -> t -> unit
