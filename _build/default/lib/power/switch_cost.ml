type regulator = { capacitance : float; efficiency : float; i_max : float }

let regulator ?(efficiency = 0.9) ?(i_max = 1.0) ~capacitance () =
  if not (capacitance > 0.0) then
    invalid_arg "Switch_cost.regulator: capacitance must be positive";
  if not (efficiency >= 0.0 && efficiency < 1.0) then
    invalid_arg "Switch_cost.regulator: efficiency must lie in [0, 1)";
  if not (i_max > 0.0) then
    invalid_arg "Switch_cost.regulator: i_max must be positive";
  { capacitance; efficiency; i_max }

let default = regulator ~capacitance:10e-6 ()

let energy_coeff r = (1.0 -. r.efficiency) *. r.capacitance

let time_coeff r = 2.0 *. r.capacitance /. r.i_max

let energy r v1 v2 = energy_coeff r *. Float.abs ((v1 *. v1) -. (v2 *. v2))

let time r v1 v2 = time_coeff r *. Float.abs (v1 -. v2)

let pp ppf r =
  Format.fprintf ppf "regulator{c=%.3guF; u=%.2f; Imax=%.2gA}"
    (r.capacitance *. 1e6) r.efficiency r.i_max
