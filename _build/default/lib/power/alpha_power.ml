type t = { k : float; vt : float; alpha : float }

let make ~k ~vt ~alpha =
  if not (k > 0.0) then invalid_arg "Alpha_power.make: k must be positive";
  if not (vt >= 0.0) then invalid_arg "Alpha_power.make: vt must be >= 0";
  if not (alpha >= 1.0) then invalid_arg "Alpha_power.make: alpha must be >= 1";
  { k; vt; alpha }

let frequency t v =
  if v <= t.vt then 0.0 else t.k *. ((v -. t.vt) ** t.alpha) /. v

let calibrate ~vt ~alpha ~v_anchor ~f_anchor =
  if not (v_anchor > vt) then
    invalid_arg "Alpha_power.calibrate: anchor voltage below threshold";
  if not (f_anchor > 0.0) then
    invalid_arg "Alpha_power.calibrate: anchor frequency must be positive";
  let k = f_anchor *. v_anchor /. ((v_anchor -. vt) ** alpha) in
  make ~k ~vt ~alpha

let default = calibrate ~vt:0.45 ~alpha:1.5 ~v_anchor:1.65 ~f_anchor:800e6

let voltage t f =
  if f < 0.0 then invalid_arg "Alpha_power.voltage: negative frequency";
  if f = 0.0 then t.vt
  else begin
    (* frequency is strictly increasing above vt; find a bracketing upper
       voltage by doubling, then invert by bisection. *)
    let hi = ref (t.vt +. 1.0) in
    while frequency t !hi < f do
      hi := t.vt +. ((!hi -. t.vt) *. 2.0)
    done;
    Dvs_numeric.Optimize.invert_increasing ~lo:t.vt ~hi:!hi
      (fun v -> frequency t v)
      f
  end

let pp ppf t =
  Format.fprintf ppf "alpha-power{k=%.4g; vt=%.3gV; alpha=%.3g}" t.k t.vt
    t.alpha
