(** Discrete DVS operating modes: (supply voltage, clock frequency) pairs.

    A {e mode table} is the processor's finite menu of settings, ordered by
    increasing frequency.  The paper evaluates an XScale-like 3-mode table
    plus synthetic tables with 3, 7 and 13 levels. *)

type t = { voltage : float;  (** volts *) frequency : float  (** hertz *) }

val make : voltage:float -> frequency:float -> t
(** Raises [Invalid_argument] on non-positive voltage or frequency. *)

val pp : Format.formatter -> t -> unit

type table = private t array
(** Nonempty, strictly increasing in frequency (and voltage). *)

val table_of_list : t list -> table
(** Sorts by frequency; raises [Invalid_argument] if empty or if two modes
    share a frequency or if voltages are not increasing along frequencies. *)

val xscale3 : table
(** The Section 5.1 table: 200 MHz @ 0.7 V, 600 MHz @ 1.3 V,
    800 MHz @ 1.65 V. *)

val levels : ?law:Alpha_power.t -> v_lo:float -> v_hi:float -> int -> table
(** [levels ~v_lo ~v_hi n] is [n] modes with voltages evenly spaced on
    [[v_lo, v_hi]] and frequencies from the alpha-power [law]
    (default {!Alpha_power.default}).  Used for the 3/7/13-level studies. *)

val min_mode : table -> t
(** Lowest-frequency mode. *)

val max_mode : table -> t

val size : table -> int

val get : table -> int -> t

val to_list : table -> t list

val neighbors : table -> float -> t * t
(** [neighbors tbl f] are the two table modes bracketing frequency [f]:
    the fastest mode with frequency [<= f] and the slowest with [>= f].
    Clamps at the table ends (both components equal there).  This is the
    Ishihara-Yasuura neighbor rule the discrete analysis relies on. *)

val index_of : table -> t -> int
(** Index of a mode in the table (compared by frequency).  Raises
    [Not_found] if absent. *)
