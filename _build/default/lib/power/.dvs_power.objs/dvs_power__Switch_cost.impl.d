lib/power/switch_cost.ml: Float Format
