lib/power/alpha_power.ml: Dvs_numeric Format
