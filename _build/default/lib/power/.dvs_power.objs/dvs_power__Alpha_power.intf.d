lib/power/alpha_power.mli: Format
