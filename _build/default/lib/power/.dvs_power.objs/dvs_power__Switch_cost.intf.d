lib/power/switch_cost.mli: Format
