lib/power/mode.mli: Alpha_power Format
