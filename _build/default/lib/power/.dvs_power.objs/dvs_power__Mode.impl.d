lib/power/mode.ml: Alpha_power Array Dvs_numeric Float Format
