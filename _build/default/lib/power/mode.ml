type t = { voltage : float; frequency : float }

let make ~voltage ~frequency =
  if not (voltage > 0.0) then invalid_arg "Mode.make: voltage must be positive";
  if not (frequency > 0.0) then
    invalid_arg "Mode.make: frequency must be positive";
  { voltage; frequency }

let pp ppf m =
  Format.fprintf ppf "%.0fMHz@@%.2fV" (m.frequency /. 1e6) m.voltage

type table = t array

let table_of_list modes =
  if modes = [] then invalid_arg "Mode.table_of_list: empty table";
  let a = Array.of_list modes in
  Array.sort (fun x y -> Float.compare x.frequency y.frequency) a;
  for i = 1 to Array.length a - 1 do
    if a.(i).frequency <= a.(i - 1).frequency then
      invalid_arg "Mode.table_of_list: duplicate frequencies";
    if a.(i).voltage <= a.(i - 1).voltage then
      invalid_arg "Mode.table_of_list: voltages must increase with frequency"
  done;
  a

let xscale3 =
  table_of_list
    [ make ~voltage:0.7 ~frequency:200e6;
      make ~voltage:1.3 ~frequency:600e6;
      make ~voltage:1.65 ~frequency:800e6 ]

let levels ?(law = Alpha_power.default) ~v_lo ~v_hi n =
  if n < 2 then invalid_arg "Mode.levels: need at least 2 levels";
  if not (v_lo > (law : Alpha_power.t).vt) then
    invalid_arg "Mode.levels: v_lo must exceed the threshold voltage";
  if not (v_hi > v_lo) then invalid_arg "Mode.levels: v_hi must exceed v_lo";
  let voltages = Dvs_numeric.Vec.linspace v_lo v_hi n in
  table_of_list
    (Array.to_list
       (Array.map
          (fun v -> make ~voltage:v ~frequency:(Alpha_power.frequency law v))
          voltages))

let min_mode (tbl : table) = tbl.(0)

let max_mode (tbl : table) = tbl.(Array.length tbl - 1)

let size (tbl : table) = Array.length tbl

let get (tbl : table) i = tbl.(i)

let to_list (tbl : table) = Array.to_list tbl

let neighbors (tbl : table) f =
  let n = Array.length tbl in
  if f <= tbl.(0).frequency then (tbl.(0), tbl.(0))
  else if f >= tbl.(n - 1).frequency then (tbl.(n - 1), tbl.(n - 1))
  else begin
    (* Largest index with frequency <= f. *)
    let lo = ref 0 in
    for i = 0 to n - 1 do
      if tbl.(i).frequency <= f then lo := i
    done;
    if tbl.(!lo).frequency = f then (tbl.(!lo), tbl.(!lo))
    else (tbl.(!lo), tbl.(!lo + 1))
  end

let index_of (tbl : table) m =
  let rec find i =
    if i >= Array.length tbl then raise Not_found
    else if tbl.(i).frequency = m.frequency then i
    else find (i + 1)
  in
  find 0
