(** DVS mode-transition costs, after Burd & Brodersen (ISLPED'00), the model
    the paper adopts in Section 4.2:

    {v SE(vi, vj) = (1 - u) * c * |vi^2 - vj^2|
       ST(vi, vj) = (2 * c / Imax) * |vi - vj| v}

    where [c] is the voltage-regulator capacitance, [u] its energy
    efficiency, and [Imax] the maximum supply current.  Transitions between
    identical voltages are free, which is what makes redundant mode-set
    instructions silent at run time. *)

type regulator = {
  capacitance : float;  (** farads *)
  efficiency : float;  (** [u] in [0, 1) *)
  i_max : float;  (** amperes *)
}

val regulator : ?efficiency:float -> ?i_max:float -> capacitance:float -> unit
  -> regulator
(** Defaults [efficiency = 0.9] and [i_max = 1.0 A]: with [capacitance =
    10e-6 F] these reproduce the paper's quoted costs of 12 us and 1.2 uJ
    for a 1.3 V -> 0.7 V transition. *)

val default : regulator
(** [regulator ~capacitance:10e-6 ()] — the paper's "typical" 10 uF. *)

val energy : regulator -> float -> float -> float
(** [energy reg v1 v2] in joules. *)

val time : regulator -> float -> float -> float
(** [time reg v1 v2] in seconds. *)

val energy_coeff : regulator -> float
(** [CE = (1 - u) * c]: the constant multiplying [|vi^2 - vj^2|] in the
    linearized MILP objective. *)

val time_coeff : regulator -> float
(** [CT = 2 * c / Imax]: the constant multiplying [|vi - vj|] in the
    linearized deadline constraint. *)

val pp : Format.formatter -> regulator -> unit
