bench/main.ml: Array Exp_analytical Exp_extensions Exp_milp List Micro Printf Sys Unix
