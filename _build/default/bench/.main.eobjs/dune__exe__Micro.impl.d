bench/micro.ml: Analyze Array Bechamel Benchmark Dvs_analytical Dvs_core Dvs_ir Dvs_lp Dvs_machine Dvs_power Dvs_profile Dvs_workloads Hashtbl Instance List Measure Printf Staged Test Time Toolkit
