bench/main.mli:
