bench/exp_analytical.ml: Array Context Continuous Discrete Dvs_analytical Dvs_numeric Dvs_power Dvs_profile Dvs_report Dvs_workloads Float Format List Params Printf Render Savings Sweep Table
