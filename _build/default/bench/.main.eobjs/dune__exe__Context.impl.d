bench/context.ml: Deadlines Dvs_core Dvs_milp Dvs_power Dvs_profile Dvs_workloads Hashtbl Workload
