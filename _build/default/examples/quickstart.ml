(* Quickstart: the whole compile-time DVS pipeline on a small program.

     dune exec examples/quickstart.exe

   Steps: write a MiniC program, compile it to a CFG, profile it on the
   cycle-level machine (once per DVS mode), build and solve the MILP that
   places a mode on every control-flow edge, then re-simulate with the
   schedule applied and check the deadline. *)

let source =
  "int data[4096]; int s; int i; int j;\n\
   s = 0;\n\
   // streaming pass: misses dominate, the clock can crawl for free\n\
   for (i = 0; i < 4096; i = i + 1) { s = s + data[i]; }\n\
   // compute pass: every cycle counts\n\
   for (i = 0; i < 150; i = i + 1) {\n\
   \  for (j = 0; j < 30; j = j + 1) { s = s + (i * j) / 3; }\n\
   }"

let () =
  (* 1. Compile. *)
  let cfg, layout = Dvs_lang.Lower.compile_string source in
  Printf.printf "compiled: %d basic blocks, %d edges\n"
    (Dvs_ir.Cfg.num_blocks cfg)
    (Array.length (Dvs_ir.Cfg.edges cfg));

  (* 2. Pick a machine: XScale-like 3 modes, small caches so the stream
     actually misses. *)
  let machine =
    Dvs_machine.Config.default
      ~l1d:{ Dvs_machine.Config.size_bytes = 1024; assoc = 2;
             block_bytes = 32; latency_cycles = 1 }
      ~l2:{ Dvs_machine.Config.size_bytes = 8192; assoc = 4;
            block_bytes = 32; latency_cycles = 16 }
      ~dram_latency:400e-9
      (* Regulator sized to this sub-millisecond program: mode switches
         cost ~60ns/6nJ, the same cost *ratio* a 10uF regulator has on a
         50x longer run. *)
      ~regulator:(Dvs_power.Switch_cost.regulator ~capacitance:0.05e-6 ())
      ()
  in
  let memory = Array.init layout.Dvs_lang.Lower.memory_words (fun i -> i mod 255) in

  (* 3. Profile: one pinned simulation per mode. *)
  let profile = Dvs_profile.Profile.collect machine cfg ~memory in
  let t_fast = Dvs_profile.Profile.pinned_time profile ~mode:2 in
  let t_slow = Dvs_profile.Profile.pinned_time profile ~mode:0 in
  Printf.printf "pinned runs: %.3f ms at 800MHz ... %.3f ms at 200MHz\n"
    (t_fast *. 1e3) (t_slow *. 1e3);

  (* 4. Ask for a deadline a third of the way into the feasible range and
     let the MILP place the mode-set instructions. *)
  let deadline = t_fast +. (0.45 *. (t_slow -. t_fast)) in
  let result = Dvs_core.Pipeline.optimize machine cfg ~memory ~deadline in
  (match Dvs_core.(result.Pipeline.schedule, result.Pipeline.verification) with
  | Some schedule, Some v ->
    Printf.printf "deadline: %.3f ms\n" (deadline *. 1e3);
    Printf.printf "modes used: %s (entry mode %d)\n"
      (String.concat ", "
         (List.map string_of_int (Dvs_core.Schedule.distinct_modes schedule)))
      schedule.Dvs_core.Schedule.entry_mode;
    Printf.printf "measured: %.3f ms, %.1f uJ (deadline %s)\n"
      (v.Dvs_core.Verify.stats.Dvs_machine.Cpu.time *. 1e3)
      (v.Dvs_core.Verify.stats.Dvs_machine.Cpu.energy *. 1e6)
      (if v.Dvs_core.Verify.meets_deadline then "met" else "MISSED");
    (* 5. Compare with the best single frequency. *)
    (match Dvs_core.Baselines.best_single_mode profile ~deadline with
    | Some (mode, base) ->
      Printf.printf
        "best single mode: mode %d at %.1f uJ -> DVS saves %.1f%%\n" mode
        (base *. 1e6)
        (100.0
        *. (1.0 -. (v.Dvs_core.Verify.stats.Dvs_machine.Cpu.energy /. base)))
    | None -> print_endline "no single mode meets this deadline")
  | _ -> print_endline "optimization failed (deadline infeasible?)")
