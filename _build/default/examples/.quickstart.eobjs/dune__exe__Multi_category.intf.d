examples/multi_category.mli:
