examples/multi_category.ml: Array Deadlines Dvs_core Dvs_machine Dvs_power Dvs_profile Dvs_workloads Printf Workload
