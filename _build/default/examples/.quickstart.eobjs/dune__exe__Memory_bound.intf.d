examples/memory_bound.mli:
