examples/analytic_explorer.mli:
