examples/analytic_explorer.ml: Array Continuous Dvs_analytical Dvs_power Float Format List Params Printf Savings Sys
