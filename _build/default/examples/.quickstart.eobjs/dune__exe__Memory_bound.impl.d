examples/memory_bound.ml: Array Dvs_core Dvs_lang Dvs_machine Dvs_power Dvs_profile Dvs_workloads Printf
