examples/quickstart.ml: Array Dvs_core Dvs_ir Dvs_lang Dvs_machine Dvs_power Dvs_profile List Pipeline Printf String
