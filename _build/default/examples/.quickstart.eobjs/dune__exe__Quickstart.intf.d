examples/quickstart.mli:
