(* Explore the Section 3 analytical model from the command line:

     dune exec examples/analytic_explorer.exe -- \
       [Noverlap_kcyc] [Ndependent_kcyc] [Ncache_kcyc] [tinv_us] [tdl_us]

   Prints the case classification, the continuous-voltage optimum, and
   discrete savings for 3/7/13-level tables. *)

open Dvs_analytical

let () =
  let arg i default =
    if Array.length Sys.argv > i then float_of_string Sys.argv.(i)
    else default
  in
  (* Defaults: a memory-dominated point inside the 200-800MHz mode range. *)
  let p =
    Params.make
      ~n_overlap:(arg 1 1500.0 *. 1e3)
      ~n_dependent:(arg 2 1200.0 *. 1e3)
      ~n_cache:(arg 3 300.0 *. 1e3)
      ~t_invariant:(arg 4 3500.0 *. 1e-6)
      ~t_deadline:(arg 5 6000.0 *. 1e-6)
  in
  Format.printf "parameters: %a@." Params.pp p;
  Format.printf "case: %a  (f_ideal=%.0f MHz, f_invariant=%s)@."
    Params.pp_case (Params.classify p)
    (Params.f_ideal p /. 1e6)
    (let fi = Params.f_invariant p in
     if Float.is_finite fi then Printf.sprintf "%.0f MHz" (fi /. 1e6)
     else "inf");

  (match Continuous.single_frequency p with
  | Some s ->
    Format.printf "best single frequency: %.0f MHz at %.3f V, E=%.4g@."
      (s.Continuous.f1 /. 1e6) s.Continuous.v1 s.Continuous.energy
  | None -> Format.printf "deadline infeasible at any frequency@.");

  (match Continuous.optimize p with
  | Some s ->
    Format.printf
      "continuous optimum: overlap %.0f MHz at %.3f V, dependent %.0f MHz at \
       %.3f V, E=%.4g@."
      (s.Continuous.f1 /. 1e6) s.Continuous.v1
      (s.Continuous.f2 /. 1e6) s.Continuous.v2 s.Continuous.energy
  | None -> ());

  (match Savings.continuous p with
  | Some r -> Format.printf "continuous savings bound: %.1f%%@." (100.0 *. r)
  | None -> ());

  List.iter
    (fun n ->
      let table = Dvs_power.Mode.levels ~v_lo:0.75 ~v_hi:1.65 n in
      match Savings.discrete p table with
      | Some r ->
        Format.printf "%2d voltage levels: savings %.1f%%@." n (100.0 *. r)
      | None -> Format.printf "%2d voltage levels: infeasible@." n)
    [ 3; 7; 13 ]
