(* Sections 4-6 reproductions: Tables 2-6, Figures 14-19. *)

open Dvs_core
open Dvs_report
open Dvs_workloads

let heading id title note =
  Printf.printf "\n=== %s: %s ===\n%s\n" id title note

let ms t = t *. 1e3

let uj e = e *. 1e6

(* --- Table 2: machine configuration ---------------------------------- *)

let table2 () =
  heading "Table 2" "simulation configuration"
    "evaluation machine (capacities scaled with the 1/50-scale workloads)";
  Format.printf "%a@." Dvs_machine.Config.pp (Workload.eval_config ());
  Format.printf
    "full-size Table 2 geometry also available: L1 %a / L2 %a@."
    (fun ppf (g : Dvs_machine.Config.cache_geometry) ->
      Format.fprintf ppf "%dKB" (g.size_bytes / 1024))
    Dvs_machine.Config.table2_l1d
    (fun ppf (g : Dvs_machine.Config.cache_geometry) ->
      Format.fprintf ppf "%dKB" (g.size_bytes / 1024))
    Dvs_machine.Config.table2_l2

(* --- Table 4: execution times and chosen deadlines -------------------- *)

let table4 () =
  heading "Table 4" "deadline boundaries and chosen deadlines (ms)"
    "execution time pinned at each mode; D1 stringent .. D5 lax";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("t@200MHz", Table.Right);
        ("t@600MHz", Table.Right); ("t@800MHz", Table.Right);
        ("D1", Table.Right); ("D2", Table.Right); ("D3", Table.Right);
        ("D4", Table.Right); ("D5", Table.Right) ]
  in
  List.iter
    (fun name ->
      let p = Context.default_profile name in
      let ds = Context.deadlines name in
      let f v = Table.fmt_float ~digits:3 (ms v) in
      Table.add_row t
        [ name;
          f (Dvs_profile.Profile.pinned_time p ~mode:0);
          f (Dvs_profile.Profile.pinned_time p ~mode:1);
          f (Dvs_profile.Profile.pinned_time p ~mode:2);
          f ds.(0); f ds.(1); f ds.(2); f ds.(3); f ds.(4) ])
    Context.all_names;
  Table.print t

(* --- Figure 16: deadline positions ------------------------------------ *)

let fig16 () =
  heading "Figure 16" "positions of deadlines"
    "all deadlines lie between exec time at 800MHz and at 200MHz:";
  Printf.printf
    "  t(800MHz)  <- D1 (1%%) - D2 (3%%) - D3 (12%%) - D4 (57%%) - D5 (98%%) \
     ->  t(200MHz)\n"

(* --- Table 3 + Figure 14: edge filtering ------------------------------ *)

let table3_fig14 () =
  heading "Table 3 / Figure 14" "edge filtering: energy and solve time"
    "deadline D5, c=10uF paper-equivalent; energies in uJ, times in CPU seconds";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("all edges E", Table.Right);
        ("filtered E", Table.Right); ("all bins", Table.Right);
        ("filt bins", Table.Right); ("all time", Table.Right);
        ("filt time", Table.Right); ("speedup", Table.Right) ]
  in
  List.iter
    (fun name ->
      let d = (Context.deadlines name).(4) in
      let full = Context.optimize ~filter:false name ~deadline:d in
      let filt = Context.optimize ~filter:true name ~deadline:d in
      let energy (r : Pipeline.result) =
        match r.Pipeline.predicted_energy with
        | Some e ->
          let flag =
            if r.Pipeline.milp.Dvs_milp.Solver.outcome
               = Dvs_milp.Solver.Optimal
            then ""
            else "*"
          in
          Table.fmt_float ~digits:1 (uj e) ^ flag
        | None -> "-"
      in
      let binaries (r : Pipeline.result) =
        string_of_int r.Pipeline.formulation.Formulation.n_binaries
      in
      let speedup =
        if filt.Pipeline.solve_seconds > 0.0 then
          full.Pipeline.solve_seconds /. filt.Pipeline.solve_seconds
        else Float.nan
      in
      Table.add_row t
        [ name; energy full; energy filt; binaries full; binaries filt;
          Table.fmt_float ~digits:3 full.Pipeline.solve_seconds;
          Table.fmt_float ~digits:3 filt.Pipeline.solve_seconds;
          Table.fmt_float ~digits:1 speedup ])
    Context.all_names;
  Table.print t

(* --- Figure 15: impact of transition cost ----------------------------- *)

let fig15_capacitances = [ 100e-6; 10e-6; 1e-6; 0.1e-6; 0.01e-6 ]

let fig15 () =
  heading "Figure 15" "impact of transition cost (regulator capacitance)"
    "deadline D5; energy normalized to the 600MHz pinned run; cols = \
     paper-equivalent c (time-scale adjusted, DESIGN.md sec. 5)";
  let t =
    Table.create
      (("benchmark", Table.Left)
      :: List.map
           (fun c -> (Printf.sprintf "%guF" (c *. 1e6), Table.Right))
           fig15_capacitances)
  in
  List.iter
    (fun name ->
      let p = Context.default_profile name in
      let base = Dvs_profile.Profile.pinned_energy p ~mode:1 in
      let d = (Context.deadlines name).(4) in
      let cells =
        List.map
          (fun c ->
            let regulator = Context.scaled_regulator ~paper_capacitance:c in
            let r = Context.optimize ~regulator name ~deadline:d in
            let flag =
              if r.Pipeline.milp.Dvs_milp.Solver.outcome
                 = Dvs_milp.Solver.Optimal
              then ""
              else "*"
            in
            match r.Pipeline.verification with
            | Some v ->
              Table.fmt_float ~digits:3
                (v.Verify.stats.Dvs_machine.Cpu.energy /. base)
              ^ flag
            | None -> "-")
          fig15_capacitances
      in
      Table.add_row t (name :: cells))
    Context.all_names;
  Table.print t;
  Printf.printf
    "lower bound with free transitions: (0.7/1.3)^2 = %.3f of the 600MHz \
     energy\n"
    ((0.7 /. 1.3) ** 2.0)

(* --- Figures 17-18 + Table 5: deadline sweep --------------------------- *)

type deadline_cell = {
  norm_energy : float;
  solve_s : float;
  transitions : int;
}

let deadline_sweep_cache = Hashtbl.create 16

(* The grid runs through the parametric sweep engine: one formulation,
   per-point RHS deltas, shared cut pool, tightest-first incumbent
   lifting (the `sweep' experiment quantifies the saving vs cold). *)
let deadline_sweep name =
  match Hashtbl.find_opt deadline_sweep_cache name with
  | Some r -> r
  | None ->
    let p = Context.default_profile name in
    let ds = Context.deadlines name in
    (* Fixed per-benchmark baseline: the all-fastest-mode run, the only
       single setting feasible at every deadline. *)
    let base = Dvs_profile.Profile.pinned_energy p ~mode:2 in
    let sw = Context.optimize_sweep name ~deadlines:ds in
    let cells =
      Array.map
        (fun (r : Pipeline.result) ->
          match r.Pipeline.verification with
          | Some v ->
            { norm_energy = v.Verify.stats.Dvs_machine.Cpu.energy /. base;
              solve_s = r.Pipeline.solve_seconds;
              transitions = v.Verify.stats.Dvs_machine.Cpu.mode_transitions }
          | None ->
            { norm_energy = Float.nan; solve_s = r.Pipeline.solve_seconds;
              transitions = 0 })
        sw.Pipeline.results
    in
    Hashtbl.replace deadline_sweep_cache name cells;
    cells

let deadline_table title note f =
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("D1", Table.Right); ("D2", Table.Right);
        ("D3", Table.Right); ("D4", Table.Right); ("D5", Table.Right) ]
  in
  List.iter
    (fun name ->
      let cells = deadline_sweep name in
      Table.add_row t (name :: Array.to_list (Array.map f cells)))
    Context.all_names;
  heading title note "";
  Table.print t

let fig17 () =
  deadline_table "Figure 17"
    "impact of deadline on energy (normalized to the all-800MHz run, the \
     best single setting feasible at every deadline)"
    (fun c -> Table.fmt_float ~digits:3 c.norm_energy)

let fig18 () =
  deadline_table "Figure 18" "MILP solution time (CPU seconds) per deadline"
    (fun c -> Table.fmt_float ~digits:3 c.solve_s)

let table5 () =
  deadline_table "Table 5" "dynamic mode-transition counts (c=10uF paper-equivalent)"
    (fun c -> string_of_int c.transitions)

(* --- Figure 19: multiple profiled data inputs (mpeg) ------------------- *)

let fig19 () =
  heading "Figure 19" "runtime dependence on the input used for profiling"
    "mpeg; schedules built from different profiles, run on all inputs (ms)";
  let inputs = [ "m100b"; "bbc"; "flwr"; "cact" ] in
  let profiles =
    List.map (fun i -> (i, Context.profile ~input:i "mpeg")) inputs
  in
  let config =
    Context.config_of ~regulator:Context.default_regulator Context.Xscale3
  in
  (* One common absolute deadline for every input — the real-time
     playback budget of the stream.  Taken at D4 of the heaviest input's
     range: the no-B-frame inputs can then run all-slow, while the
     B-frame inputs must mix modes, which is what exposes cross-category
     profiling errors. *)
  let common_deadline =
    (Deadlines.of_profile (List.assoc "cact" profiles)).(3)
  in
  let deadline_of _input = common_deadline in
  (* One schedule per profiling choice, built against the profiling
     input's own deadline(s); each schedule then runs on every input. *)
  let optimize_for categories verify_input =
    let r =
      Pipeline.optimize_multi ~config:Context.pipeline_config
        ~regulator:Context.default_regulator
        ~memory:(Context.memory ~input:verify_input "mpeg")
        categories
    in
    r.Pipeline.schedule
  in
  let single p d = [ { Formulation.profile = p; weight = 1.0; deadline = d } ] in
  let schedule_from profile_input =
    optimize_for
      (single (List.assoc profile_input profiles) (deadline_of profile_input))
      profile_input
  in
  let schedule_avg =
    lazy
      (optimize_for
         [ { Formulation.profile = List.assoc "flwr" profiles; weight = 0.5;
             deadline = deadline_of "flwr" };
           { Formulation.profile = List.assoc "bbc" profiles; weight = 0.5;
             deadline = deadline_of "bbc" } ]
         "flwr")
  in
  let run_with schedule input =
    match schedule with
    | None -> "-"
    | Some s ->
      let cfg = Context.cfg_of "mpeg" in
      let r =
        Dvs_machine.Cpu.run
          ~rc:
            (Dvs_machine.Cpu.Run_config.make
               ~initial_mode:s.Schedule.entry_mode
               ~edge_modes:(Schedule.edge_modes s cfg) ())
          config cfg
          ~memory:(Context.memory ~input "mpeg")
      in
      let t = r.Dvs_machine.Cpu.time in
      Table.fmt_float ~digits:3 (ms t)
      ^ (if t > deadline_of input *. 1.02 then "!" else "")
  in
  let t =
    Table.create
      [ ("input", Table.Left); ("deadline", Table.Right);
        ("self-profile", Table.Right); ("flwr-profile", Table.Right);
        ("bbc-profile", Table.Right); ("avg(flwr,bbc)", Table.Right) ]
  in
  let flwr_schedule = schedule_from "flwr" in
  let bbc_schedule = schedule_from "bbc" in
  List.iter
    (fun input ->
      Table.add_row t
        [ input;
          Table.fmt_float ~digits:3 (ms (deadline_of input));
          run_with (schedule_from input) input;
          run_with flwr_schedule input;
          run_with bbc_schedule input;
          run_with (Lazy.force schedule_avg) input ])
    inputs;
  Table.print t;
  print_endline
    "('!' = misses that input's deadline; m100b/bbc carry no B-frame \
     work while flwr/cact do — cross-category profiles misestimate, \
     averaging recovers)"

(* --- Table 6: MILP savings per level count ----------------------------- *)

let table6 () =
  heading "Table 6"
    "MILP energy savings vs best single mode, per voltage-level count"
    "values are 1 - E_milp/E_single; '(a x.xx)' = analytical bound (Table 1)";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("levels", Table.Right);
        ("D1", Table.Right); ("D2", Table.Right); ("D3", Table.Right);
        ("D4", Table.Right); ("D5", Table.Right) ]
  in
  let violations = ref 0 and cells = ref 0 in
  List.iter
    (fun name ->
      let analytical = Exp_analytical.table1_savings name in
      List.iter
        (fun n ->
          let kind = Context.Levels n in
          let p = Context.profile ~kind
                    ~input:(Workload.default_input (Workload.find name)) name
          in
          let ds = Context.deadlines name in
          let row =
            Array.map
              (fun d ->
                let r = Context.optimize ~kind name ~deadline:d in
                match
                  ( r.Pipeline.predicted_energy,
                    Baselines.best_single_mode p ~deadline:d )
                with
                | Some e, Some (_, base) ->
                  Float.max 0.0 (1.0 -. (e /. base))
                | _ -> Float.nan)
              ds
          in
          let arow = List.assoc n analytical in
          Array.iteri
            (fun i v ->
              if Float.is_finite v && Float.is_finite arow.(i) then begin
                incr cells;
                if v > arow.(i) +. 0.02 then incr violations
              end)
            row;
          Table.add_row t
            (name :: string_of_int n
            :: List.map2
                 (fun v a ->
                   Printf.sprintf "%s (a %s)" (Table.fmt_float ~digits:2 v)
                     (Table.fmt_float ~digits:2 a))
                 (Array.to_list row) (Array.to_list arow)))
        [ 3; 7; 13 ];
      Table.add_rule t)
    Context.analytical_names;
  Table.print t;
  Printf.printf
    "analytical bound exceeded by >2%% in %d of %d cells (paper: 1 cell, \
     attributed to rounding)\n"
    !violations !cells

(* --- sweep engine vs independent cold solves --------------------------- *)

let sweep_compare () =
  heading "sweep" "parametric sweep engine vs independent cold solves"
    "Table-4 deadline grid per benchmark, jobs=1; each leg gets a fresh \
     LP cache and metrics registry, so pivot/node counts are isolated \
     and deterministic (wall seconds are indicative)";
  let leg f =
    let obs = Dvs_obs.metrics_only () in
    let cache = Dvs_milp.Lp_cache.create ~max_entries:16384 () in
    let solver =
      Dvs_milp.Solver.Config.make ~jobs:1 ~max_nodes:4000 ~time_limit:15.0
        ~cache ~obs ()
    in
    let t0 = Unix.gettimeofday () in
    f solver;
    let wall = Unix.gettimeofday () -. t0 in
    let total n =
      Dvs_obs.Metrics.Counter.value
        (Dvs_obs.Metrics.counter (Dvs_obs.metrics obs) n)
    in
    let solve_s =
      Dvs_obs.Metrics.Histogram.sum
        (Dvs_obs.Metrics.histogram (Dvs_obs.metrics obs)
           "solver.solve_seconds")
    in
    (total "solver.lp_pivots", total "solver.nodes", wall, solve_s)
  in
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("pivots cold", Table.Right);
        ("pivots swp", Table.Right); ("nodes cold", Table.Right);
        ("nodes swp", Table.Right); ("t cold", Table.Right);
        ("t swp", Table.Right) ]
  in
  let sum = Array.make 8 0.0 in
  List.iter
    (fun name ->
      (* Warm the profile cache outside both timed legs. *)
      ignore (Context.default_profile name);
      let ds = Context.deadlines name in
      let pc, nc, tc, sc =
        leg (fun solver ->
            Array.iter
              (fun d -> ignore (Context.optimize ~solver name ~deadline:d))
              ds)
      in
      let ps, ns, ts, ss =
        leg (fun solver ->
            ignore (Context.optimize_sweep ~solver name ~deadlines:ds))
      in
      List.iteri
        (fun i v -> sum.(i) <- sum.(i) +. v)
        [ float_of_int pc; float_of_int ps; float_of_int nc;
          float_of_int ns; tc; ts; sc; ss ];
      Table.add_row t
        [ name; string_of_int pc; string_of_int ps; string_of_int nc;
          string_of_int ns; Table.fmt_float ~digits:3 tc;
          Table.fmt_float ~digits:3 ts ])
    Context.all_names;
  Table.print t;
  let pct a b = if a > 0.0 then 100.0 *. (1.0 -. (b /. a)) else 0.0 in
  Printf.printf
    "totals: pivots %.0f -> %.0f (-%.1f%%), nodes %.0f -> %.0f (-%.1f%%), \
     wall %.2fs -> %.2fs (-%.1f%%), solver wall %.3fs -> %.3fs (-%.1f%%)\n"
    sum.(0) sum.(1)
    (pct sum.(0) sum.(1))
    sum.(2) sum.(3)
    (pct sum.(2) sum.(3))
    sum.(4) sum.(5)
    (pct sum.(4) sum.(5))
    sum.(6) sum.(7)
    (pct sum.(6) sum.(7))

(* --- jobs sweep: parallel solver scaling ------------------------------- *)

let jobs_sweep () =
  heading "jobs" "parallel MILP solving: jobs=1 vs jobs=4"
    "deadline D5, no edge filtering (largest models); wall seconds; \
     'obj=' checks the incumbent objectives are bit-equal; jobs=4 also \
     benefits from the LP cache warmed by the jobs=1 run";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("nodes", Table.Right);
        ("t(j=1)", Table.Right); ("t(j=4)", Table.Right);
        ("speedup", Table.Right); ("util(j=4)", Table.Right);
        ("obj=", Table.Right) ]
  in
  List.iter
    (fun name ->
      let d = (Context.deadlines name).(4) in
      let r1 = Context.optimize ~filter:false ~jobs:1 name ~deadline:d in
      let r4 = Context.optimize ~filter:false ~jobs:4 name ~deadline:d in
      let obj (r : Pipeline.result) =
        Option.map
          (fun (s : Dvs_lp.Simplex.solution) -> s.Dvs_lp.Simplex.objective)
          r.Pipeline.milp.Dvs_milp.Solver.solution
      in
      let equal =
        match (obj r1, obj r4) with
        | Some a, Some b -> if Int64.bits_of_float a = Int64.bits_of_float b
                            then "yes" else "NO"
        | None, None -> "yes"
        | _ -> "NO"
      in
      let speedup =
        if r4.Pipeline.solve_seconds > 0.0 then
          r1.Pipeline.solve_seconds /. r4.Pipeline.solve_seconds
        else Float.nan
      in
      Table.add_row t
        [ name;
          string_of_int r1.Pipeline.milp.Dvs_milp.Solver.stats.Dvs_milp.Solver.nodes;
          Table.fmt_float ~digits:3 r1.Pipeline.solve_seconds;
          Table.fmt_float ~digits:3 r4.Pipeline.solve_seconds;
          Table.fmt_float ~digits:2 speedup;
          Table.fmt_float ~digits:2
            (Dvs_milp.Solver.worker_utilization
               r4.Pipeline.milp.Dvs_milp.Solver.stats);
          equal ])
    Context.all_names;
  Table.print t;
  Printf.printf
    "(host reports %d core(s); wall-clock speedup > 1 needs jobs <= cores \
     — on fewer cores, parity means low parallel overhead)\n"
    (Domain.recommended_domain_count ())

(* --- reproduce: the full Table-4 grid, end to end, timed --------------- *)

(* The paper's headline reproduction as a single timed experiment: every
   benchmark through the sweep engine over its whole deadline grid, each
   point verified.  Deliberately bypasses deadline_sweep's memo table so
   its wall time measures real sweep + verification work; `dvstool
   bench-diff' gates that wall against the committed baseline whenever
   both sides ran with summarized verification (sim_summary_hits > 0). *)
let reproduce () =
  heading "reproduce" "full pipeline, all benchmarks x Table-4 deadlines"
    "per-point verification through the shared summary session \
     (DESIGN.md section 12)";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("points", Table.Right);
        ("verified", Table.Right); ("warm", Table.Right);
        ("solve(s)", Table.Right); ("wall(s)", Table.Right) ]
  in
  List.iter
    (fun name ->
      ignore (Context.default_profile name);
      (* Table-4 grid plus the two saturation probes past the knee: the
         second probe's optimum is certified by the continuous bound, so
         the sweep answers it with zero LP solves — the pre-pruning
         counter the bench-diff gate watches. *)
      let ds =
        Dvs_workloads.Deadlines.sweep_of_profile
          (Context.default_profile name)
      in
      let t0 = Unix.gettimeofday () in
      let sw = Context.optimize_sweep name ~deadlines:ds in
      let wall = Unix.gettimeofday () -. t0 in
      let verified =
        Array.fold_left
          (fun acc (r : Pipeline.result) ->
            acc + if r.Pipeline.verification <> None then 1 else 0)
          0 sw.Pipeline.results
      in
      let solve =
        Array.fold_left
          (fun acc (r : Pipeline.result) -> acc +. r.Pipeline.solve_seconds)
          0.0 sw.Pipeline.results
      in
      Table.add_row t
        [ name; string_of_int (Array.length ds); string_of_int verified;
          string_of_int sw.Pipeline.sweep.Dvs_milp.Sweep.instances_warm_started;
          Table.fmt_float ~digits:3 solve; Table.fmt_float ~digits:3 wall ])
    Context.all_names;
  Table.print t

let all =
  [ ("table2", table2); ("table4", table4); ("fig16", fig16);
    ("table3", table3_fig14); ("fig14", table3_fig14); ("fig15", fig15);
    ("fig17", fig17); ("fig18", fig18); ("table5", table5);
    ("fig19", fig19); ("table6", table6); ("sweep", sweep_compare);
    ("jobs", jobs_sweep); ("reproduce", reproduce) ]
