(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 4 for the index), plus bechamel
   micro-benchmarks of the core engines.

   Usage:
     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- list    -- experiment ids
     dune exec bench/main.exe -- fig15 table6 ...  -- a subset *)

let registry =
  (* Order: analytical model first (Section 3), then the MILP evaluation
     (Sections 5-6), matching the paper's presentation. *)
  Exp_analytical.all
  @ Exp_milp.all
  @ Exp_extensions.all
  @ Exp_faults.all
  @ [ ("micro", Micro.run) ]

(* Deduplicate ids that alias the same experiment (table3/fig14). *)
let unique_registry =
  let seen = ref [] in
  List.filter
    (fun (_, f) ->
      if List.memq f !seen then false
      else begin
        seen := f :: !seen;
        true
      end)
    registry

let run_one (id, f) =
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "[%s done in %.1fs]\n%!" id (Unix.gettimeofday () -. t0)

let () =
  match Array.to_list Sys.argv with
  | _ :: "list" :: _ ->
    List.iter (fun (id, _) -> print_endline id) registry
  | _ :: (_ :: _ as ids) ->
    List.iter
      (fun id ->
        match List.assoc_opt id registry with
        | Some f -> run_one (id, f)
        | None ->
          Printf.eprintf "unknown experiment %s (try 'list')\n" id;
          exit 1)
      ids
  | _ ->
    print_endline
      "Compile-time DVS (PLDI'03) reproduction -- full experiment sweep";
    List.iter run_one unique_registry
