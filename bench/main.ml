(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 4 for the index), plus bechamel
   micro-benchmarks of the core engines.

   Usage:
     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- list    -- experiment ids
     dune exec bench/main.exe -- fig15 table6 ...  -- a subset

   --emit-bench FILE additionally writes a dvs-bench/v2 summary
   (BENCH_milp.json in CI) derived from the shared Context.obs metrics
   registry every solve reported into. *)

let registry =
  (* Order: analytical model first (Section 3), then the MILP evaluation
     (Sections 5-6), matching the paper's presentation. *)
  Exp_analytical.all
  @ Exp_milp.all
  @ Exp_extensions.all
  @ Exp_faults.all
  @ Exp_service.all
  @ [ ("micro", Micro.run) ]

(* Deduplicate ids that alias the same experiment (table3/fig14). *)
let unique_registry =
  let seen = ref [] in
  List.filter
    (fun (_, f) ->
      if List.memq f !seen then false
      else begin
        seen := f :: !seen;
        true
      end)
    registry

(* Per-experiment wall times, reported under experiment_wall_seconds in
   the bench summary. *)
let walls : (string * float) list ref = ref []

let run_one (id, f) =
  let t0 = Unix.gettimeofday () in
  f ();
  let dt = Unix.gettimeofday () -. t0 in
  walls := (id, dt) :: !walls;
  Printf.printf "[%s done in %.1fs]\n%!" id dt

let rec split_emit emit acc = function
  | [] -> (emit, List.rev acc)
  | [ "--emit-bench" ] ->
    Printf.eprintf "--emit-bench needs a FILE argument\n";
    exit 1
  | "--emit-bench" :: file :: rest -> split_emit (Some file) acc rest
  | a :: rest -> split_emit emit (a :: acc) rest

let emit_bench file ~experiments ~wall_seconds =
  let j =
    Dvs_obs.Schema.bench_summary
      ~experiment_walls:(List.rev !walls)
      ~metrics:(Dvs_obs.metrics Context.obs)
      ~experiments ~wall_seconds ()
  in
  (match Dvs_obs.Schema.validate_bench j with
  | Ok () -> ()
  | Error e ->
    Printf.eprintf "internal error: bench summary fails its own schema: %s\n" e;
    exit 1);
  let oc = open_out file in
  Dvs_obs.Json.to_channel oc j;
  output_char oc '\n';
  close_out oc;
  Printf.printf "bench summary written to %s\n%!" file

let () =
  let emit, args = split_emit None [] (List.tl (Array.to_list Sys.argv)) in
  let t0 = Unix.gettimeofday () in
  let ran =
    match args with
    | "list" :: _ ->
      List.iter (fun (id, _) -> print_endline id) registry;
      []
    | _ :: _ as ids ->
      List.iter
        (fun id ->
          match List.assoc_opt id registry with
          | Some f -> run_one (id, f)
          | None ->
            Printf.eprintf "unknown experiment %s (try 'list')\n" id;
            exit 1)
        ids;
      ids
    | [] ->
      print_endline
        "Compile-time DVS (PLDI'03) reproduction -- full experiment sweep";
      List.iter run_one unique_registry;
      List.map fst unique_registry
  in
  match emit with
  | Some file ->
    emit_bench file ~experiments:ran
      ~wall_seconds:(Unix.gettimeofday () -. t0)
  | None -> ()
