(* Shared, lazily cached data for the experiment harness: compiled
   workloads and per-(workload, input, mode-table) profiles.  Profiling is
   the expensive step (one full simulation per mode), so every experiment
   goes through this cache. *)

open Dvs_workloads

type table_kind = Xscale3 | Levels of int

(* Level tables span exactly the XScale frequency range (200-800 MHz), so
   their feasible-deadline window matches the measured one. *)
let v_200mhz =
  Dvs_power.Alpha_power.voltage Dvs_power.Alpha_power.default 200e6

let levels n = Dvs_power.Mode.levels ~v_lo:v_200mhz ~v_hi:1.65 n

let mode_table = function
  | Xscale3 -> Dvs_power.Mode.xscale3
  | Levels n -> levels n

let config_of ?regulator kind =
  Workload.eval_config ~mode_table:(mode_table kind) ?regulator ()

(* Shared metrics registry for the whole sweep: every solve the harness
   runs reports into it, and `--emit-bench' derives BENCH_milp.json from
   its totals.  Metrics only — a trace log would saturate its capacity
   over hundreds of solves.  Defined up here so the store can report its
   hit/miss counters into the same registry. *)
let obs = Dvs_obs.metrics_only ()

(* The content-addressed experiment store (DESIGN.md section 14): every
   profile collection, MILP solve and deadline sweep the harness runs is
   keyed by its fingerprinted inputs and persisted, so a second bench
   run recomputes only what a change actually invalidated.  DVS_STORE
   selects the root (default `_store', gitignored); "off"/"0"/"" runs
   everything live. *)
let store =
  match Sys.getenv_opt Dvs_store.Store.env_var with
  | Some ("off" | "0" | "") -> None
  | Some root -> Some (Dvs_store.Store.open_ ~obs ~root ())
  | None ->
    Some (Dvs_store.Store.open_ ~obs ~root:Dvs_store.Store.default_root ())

let profile_cache : (string * string * table_kind, Dvs_profile.Profile.t) Hashtbl.t =
  Hashtbl.create 32

let profile ?(kind = Xscale3) ~input name =
  match Hashtbl.find_opt profile_cache (name, input, kind) with
  | Some p -> p
  | None ->
    let w = Workload.find name in
    let cfg, _, mem = Workload.load w ~input in
    let p =
      Dvs_store.Exec.profile ?store ~source:(name ^ ":" ^ input)
        (config_of kind) cfg ~memory:mem
    in
    Hashtbl.replace profile_cache (name, input, kind) p;
    p

let default_profile ?kind name =
  profile ?kind ~input:(Workload.default_input (Workload.find name)) name

let memory ~input name =
  let w = Workload.find name in
  let _, _, mem = Workload.load w ~input in
  mem

let default_memory name =
  memory ~input:(Workload.default_input (Workload.find name)) name

let cfg_of name =
  let w = Workload.find name in
  let cfg, _, _ = Workload.load w ~input:(Workload.default_input w) in
  cfg

(* The six benchmarks in the paper's usual presentation order, and the
   four used in Tables 1/6/7. *)
let all_names = [ "adpcm"; "epic"; "gsm"; "mpeg"; "ghostscript"; "mpg123" ]

let analytical_names = [ "adpcm"; "epic"; "gsm"; "mpeg" ]

(* Table-4-style deadlines, from the xscale3 pinned runs. *)
let deadlines name = Deadlines.of_profile (default_profile name)

(* Our workloads run ~25x shorter than the paper's MediaBench binaries
   (DESIGN.md section 5), while Burd-Brodersen transition costs are
   absolute.  To keep the cost *ratio* (transition time / run time) at
   the paper's operating point, the experiments use the paper-equivalent
   regulator capacitance divided by the time scale: "c = 10uF (paper)"
   means 0.4uF here, still yielding the paper's 12us/1.2uJ per switch
   relative to a paper-scale run. *)
let time_scale = 25.0

let scaled_regulator ~paper_capacitance =
  Dvs_power.Switch_cost.regulator
    ~capacitance:(paper_capacitance /. time_scale) ()

let default_regulator = scaled_regulator ~paper_capacitance:10e-6

(* Shared LP-relaxation cache: the sweep experiments re-solve
   near-identical models (same formulation, repeated warm-start seeds and
   shallow search prefixes), which this short-circuits. *)
let lp_cache = Dvs_milp.Lp_cache.create ~max_entries:16384 ()

(* Shared verification sessions, one per (workload, input, mode table,
   regulator): every experiment that re-verifies schedules of the same
   compiled binary replays the session's recorded tape instead of paying
   a fresh cycle-accurate simulation per schedule (DESIGN.md section
   12).  The regulator is part of the key because transition costs are
   machine-config state inside the session. *)
let session_cache :
    ( string * string * table_kind * Dvs_power.Switch_cost.regulator,
      Dvs_core.Verify.Session.t )
    Hashtbl.t =
  Hashtbl.create 16

(* DVS_BENCH_COLD_VERIFY=1 swaps every session for a cold one (each
   check re-runs the cycle-accurate simulator) — the pre-summary
   behavior, kept as a knob so the EXPERIMENTS.md before/after walls
   stay reproducible from the same binary. *)
let cold_verify = Sys.getenv_opt "DVS_BENCH_COLD_VERIFY" <> None

let session ?(kind = Xscale3) ~regulator ~input name =
  let key = (name, input, kind, regulator) in
  match Hashtbl.find_opt session_cache key with
  | Some s -> s
  | None ->
    let w = Workload.find name in
    let cfg, _, mem = Workload.load w ~input in
    let s =
      Dvs_core.Verify.Session.create ~cold:cold_verify
        (config_of ~regulator kind) cfg ~memory:mem
    in
    Hashtbl.replace session_cache key s;
    s

(* MILP configuration used throughout the harness: bounded so no single
   cell can hang the run; jobs=1 keeps table cells comparable with the
   paper's single-core CPLEX times (the `jobs' experiment sweeps it). *)
let solver_config ?(jobs = 1) () =
  Dvs_milp.Solver.Config.make ~jobs ~max_nodes:4000 ~time_limit:15.0
    ~cache:lp_cache ~obs ()

let pipeline_config =
  Dvs_core.Pipeline.Config.make ~solver:(solver_config ()) ()

(* One MILP run on a workload with caching of profiles and shallow LP
   relaxations only.  [solver] overrides the shared harness solver
   config (the sweep-vs-cold experiment isolates each leg's cache and
   metrics registry this way). *)
let optimize ?(kind = Xscale3) ?(filter = true) ?jobs ?regulator ?input
    ?solver name ~deadline =
  let input =
    match input with
    | Some i -> i
    | None -> Workload.default_input (Workload.find name)
  in
  let p = profile ~kind ~input name in
  let regulator =
    match regulator with Some r -> r | None -> default_regulator
  in
  let solver =
    match solver with Some s -> s | None -> solver_config ?jobs ()
  in
  let config =
    { pipeline_config with Dvs_core.Pipeline.Config.filter; solver }
  in
  Dvs_store.Exec.optimize_multi ?store ~config
    ~verify_config:(config_of ~regulator kind)
    ~session:(fun () -> session ~kind ~regulator ~input name)
    ~regulator
    ~memory:(memory ~input name)
    [ { Dvs_core.Formulation.profile = p; weight = 1.0; deadline } ]

(* A whole deadline grid in one call, through the parametric sweep
   engine (shared cut pool, tightest-first incumbent lifting,
   cross-point basis reuse). *)
let optimize_sweep ?(kind = Xscale3) ?(filter = true) ?jobs ?regulator ?input
    ?solver ?instances ?cut_rounds name ~deadlines =
  let w = Workload.find name in
  let input =
    match input with Some i -> i | None -> Workload.default_input w
  in
  let p = profile ~kind ~input name in
  let regulator =
    match regulator with Some r -> r | None -> default_regulator
  in
  let solver =
    match solver with Some s -> s | None -> solver_config ?jobs ()
  in
  let config =
    { pipeline_config with Dvs_core.Pipeline.Config.filter; solver }
  in
  let machine = config_of ~regulator kind in
  let cfg, _, mem = Workload.load w ~input in
  Dvs_store.Exec.optimize_sweep ?store ~config ~verify_config:machine
    ~profile:p
    ~session:(fun () -> session ~kind ~regulator ~input name)
    ?instances ?cut_rounds machine cfg ~memory:mem ~deadlines
