(* Service experiment: dvsd under closed-loop load.

   Three legs against real daemons on temp sockets (the engine keeps its
   own private metrics registry, so nothing here pollutes the shared
   Context.obs solver counters the bench summary is derived from):

   - clean: warm 2-worker daemon, seeded Poisson traffic — the latency
     and savings reference point;
   - chaos: same daemon, every request carrying seeded fault triggers
     (worker crashes, pivot exhaustion, poisoned requests) — measures
     the savings the degradation ladder gives back under faults, and
     that containment holds (the daemon answers everything);
   - overload: 1 worker behind a depth-2 queue, 12 impatient clients,
     no retries — measures admission-control shedding and the latency
     of what *is* admitted.

   Two numbers feed the gated bench summary via shared-registry gauges:
   service.p99_seconds (clean-leg client-observed p99, informational in
   bench-diff — CI hosts are noisy) and service.shed_rate (overload-leg
   shed fraction, gated with an absolute tolerance: admission control
   regressing to buffering-without-bound shows up as a shed-rate
   collapse). *)

module P = Dvs_service.Protocol
module Engine = Dvs_service.Engine
module Daemon = Dvs_service.Daemon
module Loadgen = Dvs_service.Loadgen
module Metrics = Dvs_obs.Metrics

let heading id title note =
  Printf.printf "\n=== %s: %s ===\n%s\n" id title note

let wl = "ghostscript"

let sock name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dvsd-bench-%s-%d.sock" name (Unix.getpid ()))

let with_daemon ~config name f =
  let socket = sock name in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let d = Daemon.start ~engine_config:config ~socket () in
  let runner = Thread.create Daemon.run d in
  Fun.protect
    ~finally:(fun () ->
      Daemon.stop d;
      Thread.join runner)
    (fun () ->
      Engine.warm (Daemon.engine d) [ (wl, None) ];
      f ~socket)

let leg ~socket spec =
  let s = Loadgen.run ~socket spec in
  Format.printf "%a@." Loadgen.pp s;
  s

let pct = function
  | Some v -> Printf.sprintf "%.1f%%" v
  | None -> "-"

let run () =
  heading "service"
    "dvsd under load: latency, shedding, savings retention"
    "closed-loop seeded traffic against live daemons; chaos leg injects \
     crashes / pivot exhaustion / poisoned requests per request; \
     overload leg starves a depth-2 queue (see lib/service/)";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let clean, chaos =
    with_daemon ~config:(Engine.Config.make ~workers:2 ()) "main"
      (fun ~socket ->
        let clean =
          leg ~socket
            (Loadgen.leg ~clients:4 ~workloads:[ (wl, None) ] ~seed:42
               ~name:"clean" ~requests:40 ~rate_hz:200.0 ())
        in
        let chaos =
          leg ~socket
            (Loadgen.leg ~clients:4 ~workloads:[ (wl, None) ] ~seed:43
               ~chaos:
                 (P.chaos ~crash_rate:0.5 ~exhaust_rate:0.2
                    ~poison_rate:0.1 ~seed:7 ())
               ~name:"chaos" ~requests:30 ~rate_hz:200.0 ())
        in
        (clean, chaos))
  in
  let overload =
    with_daemon
      ~config:
        (Engine.Config.make ~workers:1 ~queue_depth:2 ~batch_max:1
           ~default_budget_s:0.5 ())
      "overload"
      (fun ~socket ->
        leg ~socket
          (Loadgen.leg ~clients:12 ~retries:0 ~workloads:[ (wl, None) ]
             ~seed:44 ~name:"overload" ~requests:120 ~rate_hz:2000.0 ()))
  in
  Format.printf
    "savings retention: clean %s -> chaos %s -> overload %s (served \
     requests only)@."
    (pct clean.Loadgen.savings_mean_pct)
    (pct chaos.Loadgen.savings_mean_pct)
    (pct overload.Loadgen.savings_mean_pct);
  Format.printf "chaos leg answered %d/%d (contained failures: %d)@."
    chaos.Loadgen.sent 30
    (Loadgen.class_count chaos P.Failed);
  (* The two numbers the bench summary carries (Schema.bench_summary
     reads these gauges off the shared registry). *)
  let m = Dvs_obs.metrics Context.obs in
  Metrics.Gauge.set
    (Metrics.gauge m "service.p99_seconds")
    (clean.Loadgen.p99_ms /. 1e3);
  Metrics.Gauge.set
    (Metrics.gauge m "service.shed_rate")
    overload.Loadgen.shed_rate

let all = [ ("service", run) ]
