(* Section 3 reproductions: Figures 2-11, Tables 1 and 7. *)

open Dvs_analytical
open Dvs_report

let us = 1e-6

let mk ~nov ~ndep ~ncache ~tinv_us ~tdl_us =
  Params.make ~n_overlap:nov ~n_dependent:ndep ~n_cache:ncache
    ~t_invariant:(tinv_us *. us) ~t_deadline:(tdl_us *. us)

let heading id title params_desc =
  Printf.printf "\n=== %s: %s ===\n%s\n" id title params_desc

(* --- Figures 2-4: energy vs v1 curves ------------------------------- *)

let curve_figure id title p =
  heading id title (Format.asprintf "params %a (%a)" Params.pp p
                      Params.pp_case (Params.classify p));
  let pts = Continuous.curve p ~v_lo:0.55 ~v_hi:3.5 ~n:25 in
  print_string
    (Render.series ~x_label:"v1 (V)" ~y_label:"energy (V^2 cyc)" pts);
  (match Continuous.optimize p with
  | Some s ->
    Printf.printf
      "optimal: E=%.4g, v1=%.3f V (f1=%.0f MHz), v2=%.3f V (f2=%.0f MHz)\n"
      s.Continuous.energy s.Continuous.v1
      (s.Continuous.f1 /. 1e6)
      s.Continuous.v2
      (s.Continuous.f2 /. 1e6)
  | None -> print_endline "optimal: infeasible");
  match Continuous.single_frequency p with
  | Some s ->
    Printf.printf "best single frequency: E=%.4g at %.3f V\n"
      s.Continuous.energy s.Continuous.v1
  | None -> ()

let fig2 () =
  curve_figure "Figure 2" "computation-dominated: one voltage is optimal"
    (mk ~nov:2e6 ~ndep:3e6 ~ncache:3e5 ~tinv_us:200. ~tdl_us:5000.)

let fig3 () =
  curve_figure "Figure 3" "memory-dominated: two voltages beat one"
    (mk ~nov:4e6 ~ndep:5.8e6 ~ncache:3e5 ~tinv_us:3000. ~tdl_us:5000.)

let fig4 () =
  curve_figure "Figure 4"
    "memory-dominated with slack (Ncache >= Noverlap): one voltage again"
    (mk ~nov:5e5 ~ndep:3e6 ~ncache:2e6 ~tinv_us:1000. ~tdl_us:9000.)

(* --- Figures 5-7: continuous savings surfaces ------------------------ *)

let lin lo hi n = Dvs_numeric.Vec.linspace lo hi n

let fig5 () =
  heading "Figure 5" "continuous savings vs (Noverlap, Ndependent)"
    "Ncache=3e5 cyc, tdeadline=3000us, tinvariant=1000us; values in %";
  let base = mk ~nov:0. ~ndep:0. ~ncache:3e5 ~tinv_us:1000. ~tdl_us:3000. in
  let s =
    Sweep.continuous_savings ~base ~x_label:"Noverlap (Kcyc)"
      ~y_label:"Ndependent (Kcyc)" ~xs:(lin 200. 1800. 9)
      ~ys:(lin 0. 1500. 7)
      (fun b x y ->
        { b with Params.n_overlap = x *. 1e3; n_dependent = y *. 1e3 })
  in
  print_string (Render.surface s)

let fig6 () =
  heading "Figure 6" "continuous savings vs (Ncache, tinvariant)"
    "Noverlap=4e6, Ndependent=5.8e6, tdeadline=5000us; values in %";
  let base = mk ~nov:4e6 ~ndep:5.8e6 ~ncache:0. ~tinv_us:0. ~tdl_us:5000. in
  let s =
    Sweep.continuous_savings ~base ~x_label:"Ncache (Kcyc)"
      ~y_label:"tinvariant (us)" ~xs:(lin 200. 1800. 9)
      ~ys:(lin 500. 3500. 7)
      (fun b x y ->
        { b with Params.n_cache = x *. 1e3; t_invariant = y *. us })
  in
  print_string (Render.surface s)

let fig7 () =
  heading "Figure 7" "continuous savings vs (tdeadline, Ncache)"
    "Noverlap=4e6, Ndependent=5.7e6, tinvariant=1000us; values in %";
  let base = mk ~nov:4e6 ~ndep:5.7e6 ~ncache:0. ~tinv_us:1000. ~tdl_us:5000. in
  let s =
    Sweep.continuous_savings ~base ~x_label:"tdeadline (us)"
      ~y_label:"Ncache (Kcyc)" ~xs:(lin 1500. 5000. 8)
      ~ys:(lin 500. 4000. 8)
      (fun b x y ->
        { b with Params.t_deadline = x *. us; n_cache = y *. 1e3 })
  in
  print_string (Render.surface s)

(* --- Figure 8: discrete Emin(y) -------------------------------------- *)

let levels7 = Context.levels 7

let fig8 () =
  heading "Figure 8" "discrete case: energy vs y (time given to Ncache)"
    "7 levels; Nov=1.3e7, Ndep=7e7, Ncache=5e6, tinv=0.1s, tdl=0.35s";
  let p =
    mk ~nov:1.3e7 ~ndep:7e7 ~ncache:5e6 ~tinv_us:1e5 ~tdl_us:3.5e5
  in
  let pts =
    List.filter_map
      (fun y ->
        let e = Discrete.emin_of_y p levels7 y in
        if Float.is_finite e then Some (y *. 1e3, e) else None)
      (Array.to_list (lin 8e-3 0.16 30))
  in
  print_string (Render.series ~x_label:"y (ms)" ~y_label:"Emin(y)" pts);
  match Discrete.optimize p levels7 with
  | Some s -> Printf.printf "full optimizer: E=%.6g\n" s.Discrete.energy
  | None -> print_endline "full optimizer: infeasible"

(* --- Figures 9-11: discrete savings surfaces -------------------------- *)

let fig9 () =
  heading "Figure 9" "discrete savings vs (Noverlap, Ndependent)"
    "7 levels; Ncache=2e5, tdeadline=5200us, tinvariant=1000us; values in %";
  let base = mk ~nov:0. ~ndep:0. ~ncache:2e5 ~tinv_us:1000. ~tdl_us:5200. in
  let s =
    Sweep.discrete_savings ~table:levels7 ~base ~x_label:"Noverlap (Kcyc)"
      ~y_label:"Ndependent (Kcyc)" ~xs:(lin 200. 1800. 9)
      ~ys:(lin 200. 1500. 7)
      (fun b x y ->
        { b with Params.n_overlap = x *. 1e3; n_dependent = y *. 1e3 })
  in
  print_string (Render.surface s)

let fig10 () =
  heading "Figure 10" "discrete savings vs (Ncache, tinvariant)"
    "7 levels; Nov=1.3e7, Ndep=7e7, tdeadline=3.5e5us; values in %";
  let base = mk ~nov:1.3e7 ~ndep:7e7 ~ncache:0. ~tinv_us:0. ~tdl_us:3.5e5 in
  let s =
    Sweep.discrete_savings ~table:levels7 ~base ~x_label:"Ncache (Mcyc)"
      ~y_label:"tinvariant (ms)" ~xs:(lin 1. 15. 8) ~ys:(lin 20. 200. 7)
      (fun b x y ->
        { b with Params.n_cache = x *. 1e6; t_invariant = y *. 1e-3 })
  in
  print_string (Render.surface s)

let fig11 () =
  heading "Figure 11" "discrete savings vs (tdeadline, Ncache)"
    "7 levels; Nov=1.3e7, Ndep=7e7, tinvariant=30ms; values in %";
  let base = mk ~nov:1.3e7 ~ndep:7e7 ~ncache:0. ~tinv_us:3e4 ~tdl_us:3.5e5 in
  let s =
    Sweep.discrete_savings ~table:levels7 ~base ~x_label:"tdeadline (ms)"
      ~y_label:"Ncache (Mcyc)" ~xs:(lin 110. 400. 8) ~ys:(lin 0.5 15. 7)
      (fun b x y ->
        { b with Params.t_deadline = x *. 1e-3; n_cache = y *. 1e6 })
  in
  print_string (Render.surface s)

(* --- Table 7: measured program parameters ---------------------------- *)

(* The paper's Table 7 values (Kcycles, us), for shape comparison. *)
let paper_table7 =
  [ ("adpcm", (732.7, 735.6, 4302.0, 915.9));
    ("epic", (8835.6, 12190.4, 9290.1, 4955.9));
    ("gsm", (13979.6, 13383.0, 29438.3, 389.0));
    ("mpeg", (42621.1, 44068.7, 27592.1, 2713.4)) ]

let measured_params name =
  let p = Context.default_profile name in
  let ds = Context.deadlines name in
  Dvs_profile.Categorize.of_profile p ~deadline:ds.(2)

let table7 () =
  heading "Table 7" "simulated program parameters"
    "ours at 1/50 dynamic scale; paper values in parentheses for shape";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("Ncache (Kcyc)", Table.Right);
        ("Noverlap (Kcyc)", Table.Right); ("Ndependent (Kcyc)", Table.Right);
        ("tinvariant (us)", Table.Right) ]
  in
  List.iter
    (fun name ->
      let p = measured_params name in
      let pc, po, pd, pt = List.assoc name paper_table7 in
      let cell v paper = Printf.sprintf "%.1f (%.0f)" v paper in
      Table.add_row t
        [ name;
          cell (p.Params.n_cache /. 1e3) pc;
          cell (p.Params.n_overlap /. 1e3) po;
          cell (p.Params.n_dependent /. 1e3) pd;
          cell (p.Params.t_invariant /. us) pt ])
    Context.analytical_names;
  Table.print t

(* --- Table 1: analytical savings per level count and deadline -------- *)

let table1_level_counts = [ 3; 7; 13 ]

let table1_savings name =
  let prof = Context.default_profile name in
  (* Self-consistent analytic study: the five deadlines span the range of
     the analytic composition of the measured parameters (the simulator's
     own pinned times differ by a few percent because misses overlap
     phase boundaries there). *)
  let params = Dvs_profile.Categorize.of_profile prof ~deadline:1.0 in
  let f_of m = (m : Dvs_power.Mode.t).frequency in
  let table = Context.levels 3 in
  let t_fast = Params.total_time params (f_of (Dvs_power.Mode.max_mode table)) in
  let t_slow = Params.total_time params (f_of (Dvs_power.Mode.min_mode table)) in
  let ds = Dvs_workloads.Deadlines.of_times ~t_fast ~t_slow in
  List.map
    (fun n ->
      let table = Context.levels n in
      let row =
        Array.map
          (fun d ->
            let p = Dvs_profile.Categorize.of_profile prof ~deadline:d in
            match Savings.discrete p table with
            | Some r -> r
            | None -> Float.nan)
          ds
      in
      (n, row))
    table1_level_counts

let table1 () =
  heading "Table 1" "analytical energy-saving ratio"
    "per benchmark x voltage levels x deadline (1=stringent .. 5=lax)";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("levels", Table.Right);
        ("D1", Table.Right); ("D2", Table.Right); ("D3", Table.Right);
        ("D4", Table.Right); ("D5", Table.Right) ]
  in
  List.iter
    (fun name ->
      List.iter
        (fun (n, row) ->
          Table.add_row t
            (name :: string_of_int n
            :: Array.to_list (Array.map (Table.fmt_float ~digits:2) row)))
        (table1_savings name);
      Table.add_rule t)
    Context.analytical_names;
  Table.print t

(* --- Liyao: hull-mix kernel beside the closed-form backends ---------- *)

(* The Li-Yao-Yuan kernel run over the whole program as one region whose
   operating points are the 7-level table's (total time, energy) pairs:
   the optimal continuous mixture of discrete levels.  It brackets the
   other backends — at or above the two-voltage continuous optimum (the
   hull's vertices sit on the alpha-power curve, not below it) and at or
   above the full discrete optimizer only when the latter's phase split
   pays; where all three agree the instance is voltage-insensitive. *)
let liyao () =
  heading "Liyao" "hull-mix kernel vs closed-form backends"
    "E in V^2 cyc; hull mix = Liyao kernel over the 7-level (time, \
     energy) operating points, whole program as one region; discrete = \
     full phase-split optimizer at 7 levels";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("deadline", Table.Right);
        ("1-volt", Table.Right); ("2-volt", Table.Right);
        ("hull mix", Table.Right); ("discrete", Table.Right) ]
  in
  let fmt = function Some e -> Printf.sprintf "%.4g" e | None -> "-" in
  List.iter
    (fun name ->
      let prof = Context.default_profile name in
      let params = Dvs_profile.Categorize.of_profile prof ~deadline:1.0 in
      let f_of m = (m : Dvs_power.Mode.t).frequency in
      let t_fast =
        Params.total_time params (f_of (Dvs_power.Mode.max_mode levels7))
      in
      let t_slow =
        Params.total_time params (f_of (Dvs_power.Mode.min_mode levels7))
      in
      let ds = Dvs_workloads.Deadlines.of_times ~t_fast ~t_slow in
      let charged =
        Params.charged_overlap_cycles params +. params.Params.n_dependent
      in
      let points =
        Array.of_list
          (List.map
             (fun (m : Dvs_power.Mode.t) ->
               ( Params.total_time params m.frequency,
                 charged *. m.voltage *. m.voltage ))
             (Dvs_power.Mode.to_list levels7))
      in
      Array.iteri
        (fun i d ->
          let p = Dvs_profile.Categorize.of_profile prof ~deadline:d in
          let one =
            Option.map
              (fun s -> s.Continuous.energy)
              (Continuous.single_frequency p)
          in
          let two =
            Option.map (fun s -> s.Continuous.energy) (Continuous.optimize p)
          in
          let hull = Liyao.bound [| { Liyao.points; deadline = Some d } |] in
          let disc =
            Option.map
              (fun s -> s.Discrete.energy)
              (Discrete.optimize p levels7)
          in
          Table.add_row t
            [ name; Printf.sprintf "D%d" (i + 1); fmt one; fmt two; fmt hull;
              fmt disc ])
        ds;
      Table.add_rule t)
    Context.analytical_names;
  Table.print t

let all =
  [ ("fig2", fig2); ("fig3", fig3); ("fig4", fig4); ("fig5", fig5);
    ("fig6", fig6); ("fig7", fig7); ("fig8", fig8); ("fig9", fig9);
    ("fig10", fig10); ("fig11", fig11); ("table7", table7);
    ("table1", table1); ("liyao", liyao) ]
