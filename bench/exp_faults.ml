(* Resilience experiment: how much energy saving survives each rung of
   the degradation ladder when faults strike the MILP leg.

   Scenarios per benchmark, deadline D4, savings measured (simulated)
   against the best-single-mode baseline:
   - fault-free: the full pipeline, nothing injected;
   - root crash: a deterministic worker crash on the first node — the
     solve degrades to the warm-start incumbent, the ladder rejects it
     against the baseline floor and recovers via a cold retry;
   - pivot exhaustion: every LP relaxation iter-limits, so branch and
     bound produces nothing and the ladder falls to argmax rounding of
     the bare LP relaxation;
   - single-mode: the bottom rung (and the savings denominator) — 0% by
     definition.

   Each cell names the rung that produced the schedule, so the table
   reads as "savings loss per rung". *)

open Dvs_core
open Dvs_report

let heading id title note =
  Printf.printf "\n=== %s: %s ===\n%s\n" id title note

let rung_tag = function
  | Pipeline.Milp -> "milp"
  | Pipeline.Milp_retry k -> Printf.sprintf "retry%d" k
  | Pipeline.Rounded_lp -> "lp"
  | Pipeline.Continuous_rounded -> "continuous"
  | Pipeline.Single_mode -> "single"

let run_with ?fault name ~deadline =
  let solver =
    match fault with
    | None -> Context.solver_config ()
    | Some f ->
      Dvs_milp.Solver.Config.with_fault f (Context.solver_config ())
  in
  let config = Pipeline.Config.make ~solver () in
  let regulator = Context.default_regulator in
  Pipeline.optimize_multi ~config
    ~verify_config:(Context.config_of ~regulator Context.Xscale3)
    ~regulator
    ~memory:(Context.default_memory name)
    [ { Formulation.profile = Context.default_profile name;
        weight = 1.0; deadline } ]

(* Measured energy of the best-single-mode schedule: the denominator of
   every savings number below. *)
let baseline_energy name ~deadline =
  let p = Context.default_profile name in
  match Baselines.best_single_mode p ~deadline with
  | None -> None
  | Some (mode, e_model) ->
    let cfg = p.Dvs_profile.Profile.cfg in
    let schedule = Schedule.uniform cfg mode in
    let regulator = Context.default_regulator in
    let input =
      Dvs_workloads.Workload.(default_input (find name))
    in
    let session = Context.session ~regulator ~input name in
    let v =
      Verify.Session.check session ~schedule ~deadline
        ~predicted_energy:e_model
    in
    Some v.Verify.stats.Dvs_machine.Cpu.energy

let cell base (r : Pipeline.result) =
  match (r.Pipeline.verification, r.Pipeline.rung) with
  | Some v, Some rung ->
    Printf.sprintf "%.1f%% (%s)"
      (100.0 *. (1.0 -. (v.Verify.stats.Dvs_machine.Cpu.energy /. base)))
      (rung_tag rung)
  | _ -> "-"

let resilience () =
  heading "Resilience" "energy-savings loss per degradation-ladder rung"
    "measured savings vs best-single-mode at deadline D4; faults injected \
     deterministically (lib/milp/fault.mli); cell = savings (rung that \
     answered)";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("fault-free", Table.Right);
        ("root crash", Table.Right); ("pivot exhaustion", Table.Right);
        ("single-mode", Table.Right) ]
  in
  List.iter
    (fun name ->
      let deadline = (Context.deadlines name).(3) in
      match baseline_energy name ~deadline with
      | None -> Table.add_row t [ name; "-"; "-"; "-"; "-" ]
      | Some base ->
        let clean = run_with name ~deadline in
        let crashed =
          run_with
            ~fault:(Dvs_milp.Fault.make ~crash_at_nodes:[ 1 ] ())
            name ~deadline
        in
        let exhausted =
          run_with
            ~fault:(Dvs_milp.Fault.make ~exhaust_pivots_every:1 ())
            name ~deadline
        in
        Table.add_row t
          [ name; cell base clean; cell base crashed; cell base exhausted;
            "0.0% (single)" ])
    Context.analytical_names;
  Table.print t

let all = [ ("resilience", resilience) ]
