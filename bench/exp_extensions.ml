(* Experiments beyond the paper's evaluation, implementing its Section 7
   discussion items:
   - edge- vs block-granularity ablation (why edges, quantified);
   - the cost of materializing mode-sets as real instructions, and what
     redundant-mode-set elimination (hoisting) recovers;
   - compiler optimization's effect on the DVS parameter mix;
   - Ball-Larus path profiles (the proposed move from edges to paths). *)

open Dvs_core
open Dvs_report
open Dvs_ir

let heading id title note =
  Printf.printf "\n=== %s: %s ===\n%s\n" id title note

(* --- Granularity ablation --------------------------------------------- *)

let ablation_granularity () =
  heading "Ablation A" "edge-based vs block-based mode assignment"
    "MILP energy (uJ) at deadline D4; block granularity = prior work \
     (Saputra et al.)";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("edge-based", Table.Right);
        ("block-based", Table.Right); ("penalty", Table.Right) ]
  in
  List.iter
    (fun name ->
      let d = (Context.deadlines name).(3) in
      let p = Context.default_profile name in
      let category =
        { Formulation.profile = p; weight = 1.0; deadline = d }
      in
      let solve repr =
        let f =
          Formulation.build ?repr
            ~regulator:Context.default_regulator [ category ]
        in
        let config =
          Context.solver_config ()
          |> Dvs_milp.Solver.Config.with_sos1
               (List.map (fun (_, vars) -> Array.to_list vars)
                  f.Formulation.kvars)
        in
        match
          (Dvs_milp.Solver.solve ~config f.Formulation.model)
            .Dvs_milp.Solver.solution
        with
        | Some s -> Some (s.Dvs_lp.Simplex.objective /. 1e6)
        | None -> None
      in
      let cfg = p.Dvs_profile.Profile.cfg in
      match (solve None, solve (Some (Filter.block_based cfg))) with
      | Some edge_e, Some block_e ->
        Table.add_row t
          [ name;
            Table.fmt_float ~digits:1 (edge_e *. 1e6);
            Table.fmt_float ~digits:1 (block_e *. 1e6);
            Printf.sprintf "%+.1f%%" (100.0 *. ((block_e /. edge_e) -. 1.0)) ]
      | _ -> Table.add_row t [ name; "-"; "-"; "-" ])
    Context.all_names;
  Table.print t

(* --- Mode-set materialization / hoisting ------------------------------- *)

let ablation_hoist () =
  heading "Ablation B" "materializing mode-sets as instructions"
    "deadline D4; 'ideal' = modes on edges (no instruction cost), 'naive' \
     = every edge split, 'hoisted' = after redundant-mode-set elimination";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("static sets", Table.Right);
        ("hoisted sets", Table.Right); ("ideal time", Table.Right);
        ("hoisted time", Table.Right); ("overhead", Table.Right);
        ("dyn transitions", Table.Right) ]
  in
  List.iter
    (fun name ->
      let d = (Context.deadlines name).(3) in
      let r = Context.optimize name ~deadline:d in
      match r.Pipeline.schedule with
      | None -> Table.add_row t [ name; "-"; "-"; "-"; "-"; "-"; "-" ]
      | Some schedule ->
        let p = Context.default_profile name in
        let cfg = p.Dvs_profile.Profile.cfg in
        let memory = Context.default_memory name in
        let config =
          Context.config_of ~regulator:Context.default_regulator
            Context.Xscale3
        in
        let naive = Instrument.apply schedule cfg in
        let hoisted = Instrument.simplify naive in
        let ideal_run =
          Dvs_machine.Cpu.run
            ~rc:
              (Dvs_machine.Cpu.Run_config.make
                 ~initial_mode:schedule.Schedule.entry_mode
                 ~edge_modes:(Schedule.edge_modes schedule cfg) ())
            config cfg ~memory
        in
        let hoisted_run =
          Dvs_machine.Cpu.run
            ~rc:
              (Dvs_machine.Cpu.Run_config.make
                 ~initial_mode:schedule.Schedule.entry_mode ())
            config hoisted ~memory
        in
        Table.add_row t
          [ name;
            string_of_int (Instrument.static_modesets naive);
            string_of_int (Instrument.static_modesets hoisted);
            Printf.sprintf "%.3fms" (ideal_run.Dvs_machine.Cpu.time *. 1e3);
            Printf.sprintf "%.3fms" (hoisted_run.Dvs_machine.Cpu.time *. 1e3);
            Printf.sprintf "%+.2f%%"
              (100.0
              *. ((hoisted_run.Dvs_machine.Cpu.time
                  /. ideal_run.Dvs_machine.Cpu.time)
                 -. 1.0));
            string_of_int hoisted_run.Dvs_machine.Cpu.mode_transitions ])
    Context.all_names;
  Table.print t

(* --- Compiler optimization vs DVS parameters ---------------------------- *)

let ablation_opt () =
  heading "Ablation C" "compiler optimization shifts the DVS parameter mix"
    "naive lowering vs constant-fold+DCE; fastest-mode run";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("static", Table.Right);
        ("static -O", Table.Right); ("dyn", Table.Right);
        ("dyn -O", Table.Right); ("t800 (ms)", Table.Right);
        ("t800 -O", Table.Right); ("Ndep/Nov", Table.Right);
        ("Ndep/Nov -O", Table.Right) ]
  in
  let config = Context.config_of Context.Xscale3 in
  List.iter
    (fun name ->
      let w = Dvs_workloads.Workload.find name in
      let cfg, layout, mem =
        Dvs_workloads.Workload.load w
          ~input:(Dvs_workloads.Workload.default_input w)
      in
      let exit_live = List.map snd layout.Dvs_lang.Lower.scalars in
      let optimized = Opt.optimize ~exit_live cfg in
      let run g = Dvs_machine.Cpu.run config g ~memory:mem in
      let r0 = run cfg and r1 = run optimized in
      let ratio (r : Dvs_machine.Cpu.run_stats) =
        float_of_int r.dependent_cycles
        /. float_of_int (Int.max 1 r.overlap_cycles)
      in
      Table.add_row t
        [ name;
          string_of_int (Opt.instruction_count cfg);
          string_of_int (Opt.instruction_count optimized);
          string_of_int r0.Dvs_machine.Cpu.dyn_instrs;
          string_of_int r1.Dvs_machine.Cpu.dyn_instrs;
          Table.fmt_float ~digits:3 (r0.Dvs_machine.Cpu.time *. 1e3);
          Table.fmt_float ~digits:3 (r1.Dvs_machine.Cpu.time *. 1e3);
          Table.fmt_float ~digits:2 (ratio r0);
          Table.fmt_float ~digits:2 (ratio r1) ])
    Context.all_names;
  Table.print t

(* --- Ball-Larus path profiles ------------------------------------------ *)

let paths () =
  heading "Ablation D" "Ball-Larus acyclic-path profiles"
    "the paper's Section 7 next step: regions = hot paths, not edges";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("static paths", Table.Right);
        ("dyn segments", Table.Right); ("distinct", Table.Right);
        ("top-1", Table.Right); ("top-3 coverage", Table.Right) ]
  in
  List.iter
    (fun name ->
      let w = Dvs_workloads.Workload.find name in
      let cfg, _, mem =
        Dvs_workloads.Workload.load w
          ~input:(Dvs_workloads.Workload.default_input w)
      in
      let bl = Dvs_profile.Ball_larus.compute cfg in
      let trace = (Interp.run ~trace:true cfg ~memory:mem).Interp.block_trace in
      let counts = Dvs_profile.Ball_larus.count_trace bl trace in
      let total = List.fold_left (fun a (_, c) -> a + c) 0 counts in
      let coverage k =
        let top =
          List.filteri (fun i _ -> i < k) counts
          |> List.fold_left (fun a (_, c) -> a + c) 0
        in
        100.0 *. float_of_int top /. float_of_int (Int.max 1 total)
      in
      Table.add_row t
        [ name;
          string_of_int (Dvs_profile.Ball_larus.num_paths bl);
          string_of_int total;
          string_of_int (List.length counts);
          Printf.sprintf "%.1f%%" (coverage 1);
          Printf.sprintf "%.1f%%" (coverage 3) ])
    Context.all_names;
  Table.print t

let all =
  [ ("ablation-granularity", ablation_granularity);
    ("ablation-hoist", ablation_hoist); ("ablation-opt", ablation_opt);
    ("paths", paths) ]

(* --- Memory-oblivious bound comparison ---------------------------------- *)

let bound_comparison () =
  heading "Ablation E" "why memory-aware modeling matters (vs Ishihara-Yasuura)"
    "the IY model sees only cycle counts; its 'optimal' frequency ignores \
     t_invariant and misses real deadlines (deadline D3)";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("IY f (MHz)", Table.Right);
        ("real time at IY f", Table.Right); ("deadline", Table.Right);
        ("missed by", Table.Right); ("paper-model f (MHz)", Table.Right) ]
  in
  List.iter
    (fun name ->
      let p = Context.default_profile name in
      let d = (Context.deadlines name).(2) in
      let params = Dvs_profile.Categorize.of_profile p ~deadline:d in
      let cycles = Dvs_analytical.Ishihara.of_params params in
      let f_iy = cycles /. d in
      let real_time = Dvs_analytical.Params.total_time params f_iy in
      let paper_f =
        match Dvs_analytical.Continuous.single_frequency params with
        | Some s -> s.Dvs_analytical.Continuous.f1
        | None -> Float.nan
      in
      Table.add_row t
        [ name;
          Table.fmt_float ~digits:0 (f_iy /. 1e6);
          Printf.sprintf "%.3fms" (real_time *. 1e3);
          Printf.sprintf "%.3fms" (d *. 1e3);
          Printf.sprintf "%+.1f%%" (100.0 *. ((real_time /. d) -. 1.0));
          Table.fmt_float ~digits:0 (paper_f /. 1e6) ])
    Context.analytical_names;
  Table.print t

let all = all @ [ ("bound-comparison", bound_comparison) ]

(* --- Profiling platform: in-order vs out-of-order ----------------------- *)

let ablation_core () =
  heading "Ablation F" "profiling platform: in-order vs 4-wide out-of-order"
    "the paper profiled on an OoO SimpleScalar; parameter mix and savings \
     bound shift with the core model (fastest mode; analytical 3-level \
     savings at D4-equivalent deadlines)";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("t800 io", Table.Right);
        ("t800 ooo", Table.Right); ("Nov/Ndep io", Table.Right);
        ("Nov/Ndep ooo", Table.Right); ("tinv io", Table.Right);
        ("tinv ooo", Table.Right); ("sav3 io", Table.Right);
        ("sav3 ooo", Table.Right) ]
  in
  let config = Context.config_of Context.Xscale3 in
  List.iter
    (fun name ->
      let w = Dvs_workloads.Workload.find name in
      let cfg, _, mem =
        Dvs_workloads.Workload.load w
          ~input:(Dvs_workloads.Workload.default_input w)
      in
      let io = Dvs_machine.Cpu.run config cfg ~memory:mem in
      let ooo = Dvs_machine.Cpu_ooo.run config cfg ~memory:mem in
      let savings (r : Dvs_machine.Cpu.run_stats) =
        (* Self-consistent analytic deadline range per platform. *)
        let params = Dvs_profile.Categorize.params r ~deadline:1.0 in
        let tbl = Context.levels 3 in
        let f_of (m : Dvs_power.Mode.t) = m.frequency in
        let t_fast =
          Dvs_analytical.Params.total_time params
            (f_of (Dvs_power.Mode.max_mode tbl))
        in
        let t_slow =
          Dvs_analytical.Params.total_time params
            (f_of (Dvs_power.Mode.min_mode tbl))
        in
        let d = t_fast +. (0.57 *. (t_slow -. t_fast)) in
        match
          Dvs_analytical.Savings.discrete
            (Dvs_analytical.Params.with_deadline params d) tbl
        with
        | Some r -> Table.fmt_float ~digits:2 r
        | None -> "-"
      in
      let ratio (r : Dvs_machine.Cpu.run_stats) =
        float_of_int r.Dvs_machine.Cpu.overlap_cycles
        /. float_of_int (Int.max 1 r.Dvs_machine.Cpu.dependent_cycles)
      in
      Table.add_row t
        [ name;
          Printf.sprintf "%.2fms" (io.Dvs_machine.Cpu.time *. 1e3);
          Printf.sprintf "%.2fms" (ooo.Dvs_machine.Cpu.time *. 1e3);
          Table.fmt_float ~digits:2 (ratio io);
          Table.fmt_float ~digits:2 (ratio ooo);
          Printf.sprintf "%.0fus" (io.Dvs_machine.Cpu.miss_busy_time *. 1e6);
          Printf.sprintf "%.0fus" (ooo.Dvs_machine.Cpu.miss_busy_time *. 1e6);
          savings io; savings ooo ])
    Context.all_names;
  Table.print t

let all = all @ [ ("ablation-core", ablation_core) ]

(* --- Runtime interval policy vs compile-time MILP ------------------------ *)

let ablation_runtime () =
  heading "Ablation G" "runtime interval DVS vs compile-time MILP"
    "Weiser-style utilization governor (deadline-unaware) against the \
     MILP schedule at deadline D4; energy in uJ, '!' = deadline missed";
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("deadline", Table.Right);
        ("governor time", Table.Right); ("governor E", Table.Right);
        ("MILP time", Table.Right); ("MILP E", Table.Right);
        ("gov switches", Table.Right) ]
  in
  let config =
    Context.config_of ~regulator:Context.default_regulator Context.Xscale3
  in
  List.iter
    (fun name ->
      let d = (Context.deadlines name).(3) in
      let cfg = Context.cfg_of name in
      let mem = Context.default_memory name in
      (* Interval ~ a scheduler tick scaled to our run lengths. *)
      let governor =
        Baselines.weiser_governor ~interval:(d /. 50.0) ()
      in
      let gov =
        Dvs_machine.Cpu.run
          ~rc:(Dvs_machine.Cpu.Run_config.make ~initial_mode:1 ~governor ())
          config cfg ~memory:mem
      in
      let milp = Context.optimize name ~deadline:d in
      let fmt_time (time : float) =
        Printf.sprintf "%.3fms%s" (time *. 1e3)
          (if time > d *. 1.005 then "!" else "")
      in
      match milp.Pipeline.verification with
      | Some v ->
        Table.add_row t
          [ name;
            Printf.sprintf "%.3fms" (d *. 1e3);
            fmt_time gov.Dvs_machine.Cpu.time;
            Table.fmt_float ~digits:1 (gov.Dvs_machine.Cpu.energy *. 1e6);
            fmt_time v.Verify.stats.Dvs_machine.Cpu.time;
            Table.fmt_float ~digits:1
              (v.Verify.stats.Dvs_machine.Cpu.energy *. 1e6);
            string_of_int gov.Dvs_machine.Cpu.mode_transitions ]
      | None -> Table.add_row t [ name; "-"; "-"; "-"; "-"; "-"; "-" ])
    Context.all_names;
  Table.print t;
  print_endline
    "(the governor reacts to utilization, not deadlines: it can miss them \
     or leave energy on the table; the MILP provably meets them)"

let all = all @ [ ("ablation-runtime", ablation_runtime) ]

(* --- Filter threshold sweep --------------------------------------------- *)

let ablation_filter () =
  heading "Ablation H" "edge-filter threshold sweep"
    "the paper picks a 2% energy tail; how sensitive is that choice? \
     (deadline D5; cells = predicted energy in uJ / independent edges)";
  let thresholds = [ 0.0; 0.01; 0.02; 0.05; 0.10; 0.25 ] in
  let t =
    Table.create
      (("benchmark", Table.Left)
      :: List.map
           (fun th -> (Printf.sprintf "%.0f%%" (th *. 100.), Table.Right))
           thresholds)
  in
  List.iter
    (fun name ->
      let d = (Context.deadlines name).(4) in
      let p = Context.default_profile name in
      let cells =
        List.map
          (fun th ->
            let repr =
              if th = 0.0 then None
              else Some (Filter.representatives ~threshold:th [ p ])
            in
            let f =
              Formulation.build ?repr ~regulator:Context.default_regulator
                [ { Formulation.profile = p; weight = 1.0; deadline = d } ]
            in
            let independent =
              match repr with
              | Some r -> Filter.independent_count r
              | None -> Array.length f.Formulation.repr
            in
            let config =
              Context.solver_config ()
              |> Dvs_milp.Solver.Config.with_sos1
                   (List.map (fun (_, vars) -> Array.to_list vars)
                      f.Formulation.kvars)
            in
            match
              (Dvs_milp.Solver.solve ~config f.Formulation.model)
                .Dvs_milp.Solver.solution
            with
            | Some s ->
              Printf.sprintf "%.0f/%d" s.Dvs_lp.Simplex.objective independent
            | None -> "-")
          thresholds
      in
      Table.add_row t (name :: cells))
    Context.all_names;
  Table.print t;
  print_endline
    "(energy should stay flat while independent edges shrink — until the \
     threshold gets greedy and starts costing energy)"

let all = all @ [ ("ablation-filter", ablation_filter) ]
