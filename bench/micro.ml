(* Bechamel micro-benchmarks of the core engines: the MILP stack (one
   representative DVS formulation solve), the raw simplex, the
   cycle-level simulator, and the analytical optimizer.  These are the
   performance numbers behind the Figure 14/18 solve-time claims. *)

open Bechamel
open Toolkit

let simplex_test_model () =
  (* A mid-size random-but-fixed LP: 40 vars, 25 constraints. *)
  let m = Dvs_lp.Model.create () in
  let r = Dvs_workloads.Rng.create 7 in
  let vars =
    Array.init 40 (fun _ -> Dvs_lp.Model.add_var ~ub:10.0 m)
  in
  for _ = 1 to 25 do
    let terms =
      List.init 40 (fun j ->
          (float_of_int (Dvs_workloads.Rng.int r 9) -. 4.0, vars.(j)))
    in
    Dvs_lp.Model.add_constraint m (Dvs_lp.Expr.of_terms terms) Dvs_lp.Model.Le
      (float_of_int (20 + Dvs_workloads.Rng.int r 30))
  done;
  Dvs_lp.Model.set_objective m Dvs_lp.Model.Minimize
    (Dvs_lp.Expr.of_terms
       (List.init 40 (fun j ->
            (float_of_int (Dvs_workloads.Rng.int r 9) -. 4.0, vars.(j)))));
  m

let tests () =
  let simplex_model = simplex_test_model () in
  let adpcm = Dvs_workloads.Workload.find "adpcm" in
  let cfg, _, mem =
    Dvs_workloads.Workload.load adpcm
      ~input:(Dvs_workloads.Workload.default_input adpcm)
  in
  let machine = Dvs_workloads.Workload.eval_config () in
  let gs = Dvs_workloads.Workload.find "ghostscript" in
  let gs_cfg, _, gs_mem =
    Dvs_workloads.Workload.load gs
      ~input:(Dvs_workloads.Workload.default_input gs)
  in
  let gs_profile = Dvs_profile.Profile.collect machine gs_cfg ~memory:gs_mem in
  let gs_deadline =
    (Dvs_workloads.Deadlines.of_profile gs_profile).(2)
  in
  let gs_categories =
    [ { Dvs_core.Formulation.profile = gs_profile; weight = 1.0;
        deadline = gs_deadline } ]
  in
  let gs_formulation =
    Dvs_core.Formulation.build ~regulator:Dvs_power.Switch_cost.default
      gs_categories
  in
  let gs_relax =
    Dvs_core.Relaxation.prepare gs_formulation
      ~regulator:Dvs_power.Switch_cost.default gs_categories
  in
  let gs_deadlines_us = [| gs_deadline *. 1e6 |] in
  let params =
    Dvs_analytical.Params.make ~n_overlap:4e6 ~n_dependent:5.8e6
      ~n_cache:3e5 ~t_invariant:3e-3 ~t_deadline:5e-3
  in
  let table7 = Dvs_power.Mode.levels ~v_lo:0.7 ~v_hi:1.65 7 in
  Test.make_grouped ~name:"dvs"
    [ Test.make ~name:"simplex-40x25"
        (Staged.stage (fun () ->
             ignore (Dvs_lp.Simplex.solve simplex_model)));
      Test.make ~name:"simulate-adpcm-pinned"
        (Staged.stage (fun () ->
             ignore (Dvs_machine.Cpu.run machine cfg ~memory:mem)));
      Test.make ~name:"milp-pipeline-ghostscript"
        (Staged.stage (fun () ->
             ignore
               (Dvs_core.Pipeline.optimize_multi
                  ~regulator:Dvs_power.Switch_cost.default ~memory:gs_mem
                  [ { Dvs_core.Formulation.profile = gs_profile;
                      weight = 1.0; deadline = gs_deadline } ])));
      Test.make ~name:"verify-adpcm-cycle-accurate"
        (let schedule = Dvs_core.Schedule.uniform cfg 1 in
         let session =
           Dvs_core.Verify.Session.create ~cold:true machine cfg ~memory:mem
         in
         Staged.stage (fun () ->
             ignore
               (Dvs_core.Verify.Session.check session ~schedule
                  ~deadline:1.0 ~predicted_energy:1e-6)));
      Test.make ~name:"verify-adpcm-summarized"
        (let schedule = Dvs_core.Schedule.uniform cfg 1 in
         let session =
           Dvs_core.Verify.Session.create machine cfg ~memory:mem
         in
         (* Warm the summary cache outside the timed region: steady
            state is what the deadline sweeps see. *)
         ignore
           (Dvs_core.Verify.Session.check session ~schedule ~deadline:1.0
              ~predicted_energy:1e-6);
         Staged.stage (fun () ->
             ignore
               (Dvs_core.Verify.Session.check session ~schedule
                  ~deadline:1.0 ~predicted_energy:1e-6)));
      Test.make ~name:"simulate-adpcm-ooo"
        (Staged.stage (fun () ->
             ignore (Dvs_machine.Cpu_ooo.run machine cfg ~memory:mem)));
      Test.make ~name:"interp-adpcm"
        (Staged.stage (fun () ->
             ignore (Dvs_ir.Interp.run cfg ~memory:mem)));
      Test.make ~name:"cache-64-accesses"
        (let cache = Dvs_machine.Cache.create Dvs_machine.Config.table2_l1d in
         Staged.stage (fun () ->
             for i = 0 to 63 do
               ignore (Dvs_machine.Cache.access cache (i * 4096))
             done));
      (* The continuous-bound pair: the Liyao kernel answers the same
         root-bounding question one simplex solve of the full relaxation
         does — the gap between these two rows is what sweep pre-pruning
         saves per certified grid point. *)
      Test.make ~name:"continuous-bound-ghostscript"
        (Staged.stage (fun () ->
             ignore
               (Dvs_core.Relaxation.bound gs_relax
                  ~deadlines_us:gs_deadlines_us)));
      Test.make ~name:"root-lp-ghostscript"
        (Staged.stage (fun () ->
             ignore
               (Dvs_lp.Simplex.solve
                  gs_formulation.Dvs_core.Formulation.model)));
      (* The basis-backend pair: the same root relaxation of the largest
         Figure-18 instance solved pivot-for-pivot identically by both
         backends — every pivot runs one FTRAN, one BTRAN and one
         pivot-row price, so the gap between these two rows is exactly
         the dense-inverse vs sparse-LU+eta linear-algebra cost. *)
      Test.make ~name:"lp-basis-lu-ghostscript"
        (Staged.stage (fun () ->
             ignore
               (Dvs_lp.Simplex.solve ~backend:Dvs_lp.Simplex.Lu
                  gs_formulation.Dvs_core.Formulation.model)));
      Test.make ~name:"lp-basis-dense-ghostscript"
        (Staged.stage (fun () ->
             ignore
               (Dvs_lp.Simplex.solve ~backend:Dvs_lp.Simplex.Dense
                  gs_formulation.Dvs_core.Formulation.model)));
      Test.make ~name:"analytical-discrete-optimize"
        (Staged.stage (fun () ->
             ignore (Dvs_analytical.Discrete.optimize params table7)));
      Test.make ~name:"analytical-continuous-optimize"
        (Staged.stage (fun () ->
             ignore (Dvs_analytical.Continuous.optimize params))) ]

let run () =
  print_endline "\n=== Micro-benchmarks (bechamel, ns per run) ===";
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) ~kde:None ()
  in
  let raw =
    Benchmark.all cfg [ Instance.monotonic_clock ] (tests ())
  in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0
         ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "%-40s %12.0f ns/run\n" name est
      | Some [] | None -> Printf.printf "%-40s (no estimate)\n" name)
    rows
